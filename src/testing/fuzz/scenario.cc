#include "src/testing/fuzz/scenario.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/servers/registry.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace hetnet::fuzz {
namespace {

// Serializing 64-bit seeds through a double would lose bits; store decimal
// strings instead.
json::Value u64_value(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return json::Value::string(buf);
}

std::uint64_t u64_from(const json::Value& v) {
  std::uint64_t out = 0;
  std::sscanf(v.as_string().c_str(), "%" SCNu64, &out);
  return out;
}

}  // namespace

FuzzScenario generate_scenario(std::uint64_t seed) {
  Rng rng(seed);
  FuzzScenario s;
  s.seed = seed;

  // Topology: weight toward the paper's shape, but visit the edges —
  // two-ring meshes, line backbones, single-host rings.
  s.num_rings = 2 + static_cast<int>(rng.pick(3));          // 2..4
  s.hosts_per_ring = 1 + static_cast<int>(rng.pick(4));     // 1..4
  s.line_backbone = s.num_rings >= 3 && rng.bernoulli(0.3);
  s.ttrt = units::ms(rng.uniform(4.0, 16.0));
  s.protocol_overhead = units::ms(rng.uniform(0.5, 2.0));

  s.beta = rng.uniform(0.0, 1.0);
  s.bisection_iters = 10 + static_cast<int>(rng.pick(5));   // 10..14

  // Connections: at most one per source host (Section 3.2), so the churn
  // sequence below never needs host bookkeeping — distinct connections have
  // distinct source hosts by construction.
  const int num_hosts = s.num_rings * s.hosts_per_ring;
  const int want = 1 + static_cast<int>(rng.pick(
                           static_cast<std::size_t>(std::min(num_hosts, 8))));
  std::vector<int> hosts(static_cast<std::size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) hosts[static_cast<std::size_t>(h)] = h;
  // Fisher–Yates prefix: the first `want` entries are the source hosts.
  for (int i = 0; i < want; ++i) {
    const auto j = i + static_cast<int>(rng.pick(
                           static_cast<std::size_t>(num_hosts - i)));
    std::swap(hosts[static_cast<std::size_t>(i)],
              hosts[static_cast<std::size_t>(j)]);
  }
  for (int i = 0; i < want; ++i) {
    FuzzConnection c;
    const int src = hosts[static_cast<std::size_t>(i)];
    c.src_ring = src / s.hosts_per_ring;
    c.src_index = src % s.hosts_per_ring;
    // Destination: any other host; ~1/num_rings of the time this lands on
    // the source ring (the intra-ring case-1 path).
    int dst = src;
    while (dst == src) {
      dst = static_cast<int>(rng.pick(static_cast<std::size_t>(num_hosts)));
    }
    c.dst_ring = dst / s.hosts_per_ring;
    c.dst_index = dst % s.hosts_per_ring;

    // Dual-periodic source: ρ ∈ [0.2, 6] Mb/s, outer period 50–200 ms,
    // C1 split into m sub-bursts every P1/k (m <= k keeps the sub-bursts
    // inside the outer window, so ρ = C1/P1 exactly).
    const double rho_mbps = rng.uniform(0.2, 6.0);
    c.p1 = units::ms(rng.uniform(50.0, 200.0));
    c.c1 = units::mbps(rho_mbps) * c.p1;
    const int k = 2 + static_cast<int>(rng.pick(9));  // 2..10
    const int m = 1 + static_cast<int>(rng.pick(static_cast<std::size_t>(k)));
    c.p2 = c.p1 / static_cast<double>(k);
    c.c2 = c.c1 / static_cast<double>(m);
    c.peak = rng.bernoulli(0.25) ? units::mbps(100) + c.c2 / c.p2
                                 : BitsPerSecond::infinity();
    c.deadline = units::ms(rng.uniform(15.0, 250.0));
    s.connections.push_back(c);
  }

  // Churn: admit every connection once, interleaved with releases of live
  // ones; whatever survives is the final set the packet-sim oracle runs.
  std::vector<int> unadmitted;
  for (int i = 0; i < want; ++i) unadmitted.push_back(i);
  std::vector<int> live;
  while (!unadmitted.empty()) {
    if (!live.empty() && rng.bernoulli(0.3)) {
      const auto k = rng.pick(live.size());
      s.ops.push_back({true, live[k]});
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      const auto k = rng.pick(unadmitted.size());
      s.ops.push_back({false, unadmitted[k]});
      live.push_back(unadmitted[k]);
      unadmitted.erase(unadmitted.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  // A few trailing releases, keeping at least one connection live when
  // possible so the empirical oracle has traffic to measure.
  while (live.size() > 1 && rng.bernoulli(0.35)) {
    const auto k = rng.pick(live.size());
    s.ops.push_back({true, live[k]});
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
  }

  s.sim_duration = units::sec(rng.uniform(0.5, 2.0));
  const double fills[] = {0.0, 0.5, 0.9};
  s.async_fill = fills[rng.pick(3)];
  s.sim_seed = rng.next_u64() | 1;

  // Media mix: half of the scenarios keep the historical all-FDDI/ATM
  // chain at full weight; the rest mix TDMA access segments and satellite
  // backbones in. Sampled last so earlier draws match older generators.
  if (rng.bernoulli(0.5)) {
    for (int r = 0; r < s.num_rings; ++r) {
      s.ring_media.push_back(rng.bernoulli(0.35) ? "tdma-ethernet"
                                                 : "fddi");
    }
    s.tdma_slot = units::us(rng.uniform(32.0, 128.0));
    if (rng.bernoulli(0.3)) {
      s.backbone_medium = "satellite-atm";
      s.sat_propagation = units::ms(rng.uniform(100.0, 400.0));
      // An inter-ring route crosses up to three backbone links, each at
      // the sampled propagation; lift every deadline above that floor so
      // satellite scenarios exercise admission instead of rejecting
      // everything outright.
      for (FuzzConnection& c : s.connections) {
        c.deadline += s.sat_propagation * 4.0;
      }
    }
  }
  return s;
}

void normalize_scenario(FuzzScenario* s) {
  s->num_rings = std::max(1, s->num_rings);
  s->hosts_per_ring = std::max(1, s->hosts_per_ring);
  if (s->num_rings < 3) s->line_backbone = false;
  if (s->ttrt <= 0) s->ttrt = units::ms(8);
  if (s->protocol_overhead <= 0) s->protocol_overhead = units::ms(1);
  s->beta = std::clamp(s->beta, 0.0, 1.0);
  s->bisection_iters = std::clamp(s->bisection_iters, 4, 24);
  if (s->sim_duration <= 0) s->sim_duration = units::sec(0.5);
  s->async_fill = std::clamp(s->async_fill, 0.0, 0.95);

  // Media mix: unknown names fall back to the defaults (shrinkers and
  // hand-edited repros may carry anything); surplus per-ring entries go
  // with their rings.
  const servers::MediumRegistry& registry = servers::MediumRegistry::builtin();
  for (std::string& name : s->ring_media) {
    if (!registry.has_access(name)) name = "fddi";
  }
  if (s->ring_media.size() > static_cast<std::size_t>(s->num_rings)) {
    s->ring_media.resize(static_cast<std::size_t>(s->num_rings));
  }
  if (!registry.has_backbone(s->backbone_medium)) s->backbone_medium = "atm";
  if (!(s->sat_propagation > 0)) s->sat_propagation = units::ms(250);
  if (!(s->tdma_slot > 0) || s->tdma_slot > s->ttrt) {
    s->tdma_slot = units::us(64);
  }

  for (auto& c : s->connections) {
    c.src_ring = std::clamp(c.src_ring, 0, s->num_rings - 1);
    c.dst_ring = std::clamp(c.dst_ring, 0, s->num_rings - 1);
    c.src_index = std::clamp(c.src_index, 0, s->hosts_per_ring - 1);
    c.dst_index = std::clamp(c.dst_index, 0, s->hosts_per_ring - 1);
    if (c.p1 <= 0) c.p1 = units::ms(100);
    if (c.c1 <= 0) c.c1 = units::kbits(100);
    if (c.p2 <= 0 || c.p2 > c.p1) c.p2 = c.p1;
    if (c.c2 <= 0 || c.c2 > c.c1) c.c2 = c.c1;
    // Keep the sub-burst train inside the outer window: need
    // (C1/C2)·P2 <= P1. Growing C2 toward C1 always restores it.
    if (val(c.c1 / c.c2) * val(c.p2) > val(c.p1) * (1 + 1e-12)) {
      c.c2 = c.c1 * val(c.p2 / c.p1);
    }
    if (c.peak < c.c2 / c.p2) c.peak = BitsPerSecond::infinity();
    if (c.deadline <= 0) c.deadline = units::ms(80);
  }

  // Drop ops referencing dropped connections; keep admit-before-release
  // ordering per connection and at most one admission each.
  std::vector<FuzzOp> ops;
  std::vector<int> state(s->connections.size(), 0);  // 0 new, 1 live, 2 done
  for (const FuzzOp& op : s->ops) {
    if (op.conn < 0 ||
        op.conn >= static_cast<int>(s->connections.size())) {
      continue;
    }
    auto& st = state[static_cast<std::size_t>(op.conn)];
    if (!op.release && st == 0) {
      st = 1;
      ops.push_back(op);
    } else if (op.release && st == 1) {
      st = 2;
      ops.push_back(op);
    }
  }
  s->ops = std::move(ops);
}

net::TopologyParams topology_params(const FuzzScenario& s) {
  net::TopologyParams p = net::paper_topology_params();
  p.num_rings = s.num_rings;
  p.hosts_per_ring = s.hosts_per_ring;
  p.backbone_shape =
      s.line_backbone ? net::BackboneShape::kLine : net::BackboneShape::kMesh;
  p.ring.ttrt = s.ttrt;
  p.ring.protocol_overhead = s.protocol_overhead;
  if (!s.ring_media.empty()) {
    p.access_hops.clear();
    for (const std::string& name : s.ring_media) {
      servers::HopSpec hop;
      hop.medium = name;
      if (name == "tdma-ethernet") hop.slot_time = s.tdma_slot;
      p.access_hops.push_back(hop);
    }
  }
  p.backbone_hop.medium = s.backbone_medium;
  if (s.backbone_medium == "satellite-atm") {
    p.backbone_hop.propagation = s.sat_propagation;
  }
  return p;
}

core::CacConfig cac_config(const FuzzScenario& s, bool incremental) {
  core::CacConfig cfg;
  cfg.beta = s.beta;
  cfg.bisection_iters = s.bisection_iters;
  cfg.incremental = incremental;
  return cfg;
}

net::ConnectionSpec connection_spec(const FuzzScenario& s, int conn) {
  HETNET_CHECK(conn >= 0 &&
                   conn < static_cast<int>(s.connections.size()),
               "connection index out of range");
  const FuzzConnection& c =
      s.connections[static_cast<std::size_t>(conn)];
  net::ConnectionSpec spec;
  spec.id = static_cast<net::ConnectionId>(conn + 1);
  spec.src = {c.src_ring, c.src_index};
  spec.dst = {c.dst_ring, c.dst_index};
  spec.source =
      std::make_shared<DualPeriodicEnvelope>(c.c1, c.p1, c.c2, c.p2, c.peak);
  spec.deadline = c.deadline;
  return spec;
}

json::Value scenario_to_json(const FuzzScenario& s) {
  json::Value v = json::Value::object();
  v.set("seed", u64_value(s.seed));
  v.set("num_rings", json::Value::number(s.num_rings));
  v.set("hosts_per_ring", json::Value::number(s.hosts_per_ring));
  v.set("line_backbone", json::Value::boolean(s.line_backbone));
  v.set("ttrt_s", json::Value::number(val(s.ttrt)));
  v.set("protocol_overhead_s", json::Value::number(val(s.protocol_overhead)));
  v.set("beta", json::Value::number(s.beta));
  v.set("bisection_iters", json::Value::number(s.bisection_iters));
  json::Value conns = json::Value::array();
  for (const FuzzConnection& c : s.connections) {
    json::Value jc = json::Value::object();
    jc.set("src_ring", json::Value::number(c.src_ring));
    jc.set("src_index", json::Value::number(c.src_index));
    jc.set("dst_ring", json::Value::number(c.dst_ring));
    jc.set("dst_index", json::Value::number(c.dst_index));
    jc.set("c1_bits", json::Value::number(val(c.c1)));
    jc.set("p1_s", json::Value::number(val(c.p1)));
    jc.set("c2_bits", json::Value::number(val(c.c2)));
    jc.set("p2_s", json::Value::number(val(c.p2)));
    // +infinity is not a JSON number; 0 encodes "unlimited".
    jc.set("peak_bps", json::Value::number(
                           std::isinf(val(c.peak)) ? 0.0 : val(c.peak)));
    jc.set("deadline_s", json::Value::number(val(c.deadline)));
    conns.push(std::move(jc));
  }
  v.set("connections", std::move(conns));
  json::Value ops = json::Value::array();
  for (const FuzzOp& op : s.ops) {
    json::Value jo = json::Value::object();
    jo.set("op", json::Value::string(op.release ? "release" : "admit"));
    jo.set("conn", json::Value::number(op.conn));
    ops.push(std::move(jo));
  }
  v.set("ops", std::move(ops));
  v.set("sim_duration_s", json::Value::number(val(s.sim_duration)));
  v.set("async_fill", json::Value::number(s.async_fill));
  v.set("sim_seed", u64_value(s.sim_seed));
  json::Value media = json::Value::array();
  for (const std::string& name : s.ring_media) {
    media.push(json::Value::string(name));
  }
  v.set("ring_media", std::move(media));
  v.set("backbone_medium", json::Value::string(s.backbone_medium));
  v.set("sat_propagation_s", json::Value::number(val(s.sat_propagation)));
  v.set("tdma_slot_s", json::Value::number(val(s.tdma_slot)));
  return v;
}

FuzzScenario scenario_from_json(const json::Value& v) {
  FuzzScenario s;
  s.seed = u64_from(v.at("seed"));
  s.num_rings = static_cast<int>(v.num_at("num_rings"));
  s.hosts_per_ring = static_cast<int>(v.num_at("hosts_per_ring"));
  s.line_backbone = v.bool_at("line_backbone");
  s.ttrt = Seconds{v.num_at("ttrt_s")};
  s.protocol_overhead = Seconds{v.num_at("protocol_overhead_s")};
  s.beta = v.num_at("beta");
  s.bisection_iters = static_cast<int>(v.num_at("bisection_iters"));
  for (const json::Value& jc : v.at("connections").items()) {
    FuzzConnection c;
    c.src_ring = static_cast<int>(jc.num_at("src_ring"));
    c.src_index = static_cast<int>(jc.num_at("src_index"));
    c.dst_ring = static_cast<int>(jc.num_at("dst_ring"));
    c.dst_index = static_cast<int>(jc.num_at("dst_index"));
    c.c1 = Bits{jc.num_at("c1_bits")};
    c.p1 = Seconds{jc.num_at("p1_s")};
    c.c2 = Bits{jc.num_at("c2_bits")};
    c.p2 = Seconds{jc.num_at("p2_s")};
    const double peak = jc.num_at("peak_bps");
    c.peak = peak <= 0 ? BitsPerSecond::infinity() : BitsPerSecond{peak};
    c.deadline = Seconds{jc.num_at("deadline_s")};
    s.connections.push_back(c);
  }
  for (const json::Value& jo : v.at("ops").items()) {
    FuzzOp op;
    op.release = jo.str_at("op") == "release";
    op.conn = static_cast<int>(jo.num_at("conn"));
    s.ops.push_back(op);
  }
  s.sim_duration = Seconds{v.num_at("sim_duration_s")};
  s.async_fill = v.num_at("async_fill");
  s.sim_seed = u64_from(v.at("sim_seed"));
  // Media keys are absent from pre-media repro files; the field defaults
  // reproduce the historical all-FDDI/ATM chain exactly.
  if (v.has("ring_media")) {
    for (const json::Value& m : v.at("ring_media").items()) {
      s.ring_media.push_back(m.as_string());
    }
    s.backbone_medium = v.str_at("backbone_medium");
    s.sat_propagation = Seconds{v.num_at("sat_propagation_s")};
    s.tdma_slot = Seconds{v.num_at("tdma_slot_s")};
  }
  return s;
}

std::string describe_scenario(const FuzzScenario& s) {
  int tdma_rings = 0;
  for (const std::string& name : s.ring_media) {
    tdma_rings += name == "tdma-ethernet" ? 1 : 0;
  }
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "%d rings x %d hosts (%s), TTRT %.2f ms, beta %.2f, "
                "%zu conns, %zu ops, async_fill %.2f, media %d tdma / %s",
                s.num_rings, s.hosts_per_ring,
                s.line_backbone ? "line" : "mesh", val(s.ttrt) * 1e3, s.beta,
                s.connections.size(), s.ops.size(), s.async_fill, tdma_rings,
                s.backbone_medium.c_str());
  return buf;
}

}  // namespace hetnet::fuzz
