// The differential-fuzzing driver.
//
// run_fuzz() walks a contiguous seed range; for each seed it generates a
// scenario, runs the seven oracles (src/testing/fuzz/oracles.h), and on any
// violation shrinks the scenario (src/testing/fuzz/shrink.h) chasing the
// same set of failing oracles, then emits a self-contained JSON repro:
//
//   {
//     "format": "hetnet-fuzz-repro-v1",
//     "seed": "<originating seed>",
//     "scenario": { ... },                  // scenario.h JSON schema
//     "verdicts": [{"oracle", "ok", "detail"}, ...],   // all seven oracles
//     "shrink": {"steps": n, "attempts": m}
//   }
//
// replay_repro() re-runs the oracles on a repro's scenario and compares the
// fresh (oracle, ok) vector against the recorded one — the determinism
// contract `fuzz_soundness --replay` enforces. Detail strings are reported
// but not matched (they carry formatted floats that legitimately differ in
// the last digits across compilers).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/testing/fuzz/json.h"
#include "src/testing/fuzz/oracles.h"
#include "src/testing/fuzz/scenario.h"

namespace hetnet::fuzz {

struct FuzzOptions {
  std::uint64_t first_seed = 1;
  int num_seeds = 50;
  OracleOptions oracle;
  bool shrink = true;
  int max_shrink_attempts = 200;
  // When non-empty, each failure's repro JSON is written here as
  // repro_seed_<seed>.json (directory must exist).
  std::string repro_dir;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  FuzzScenario scenario;                // shrunk (== generated if no shrink)
  std::vector<OracleResult> verdicts;   // all seven oracles on `scenario`
  int shrink_steps = 0;
  int shrink_attempts = 0;
  std::string repro_path;    // empty when no repro_dir was configured
  // Sibling repro_seed_<seed>.explain.ndjson with the controller's
  // per-request decision-explain records for the (shrunk) scenario; empty
  // when no repro_dir was configured.
  std::string explain_path;
};

struct FuzzReport {
  int seeds_run = 0;
  std::vector<FuzzFailure> failures;
};

// Runs the seed sweep. Progress and failure summaries go to `log` when
// non-null (one line per failure, one closing line).
FuzzReport run_fuzz(const FuzzOptions& options, std::ostream* log = nullptr);

// Repro serialization (schema above).
json::Value failure_to_json(const FuzzFailure& failure);
FuzzFailure failure_from_json(const json::Value& value);

struct ReplayOutcome {
  bool matches_recorded = false;  // (oracle, ok) vectors identical
  std::vector<OracleResult> fresh;
  std::vector<OracleResult> recorded;
};

// Re-runs all oracles on the repro's scenario and compares verdicts.
ReplayOutcome replay_repro(const json::Value& repro,
                           const OracleOptions& options = {});

}  // namespace hetnet::fuzz
