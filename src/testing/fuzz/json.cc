#include "src/testing/fuzz/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/check.h"

namespace hetnet::fuzz::json {

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  HETNET_CHECK(std::isfinite(d), "JSON numbers must be finite");
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

bool Value::as_bool() const {
  HETNET_CHECK(kind_ == Kind::kBool, "not a JSON bool");
  return bool_;
}

double Value::as_number() const {
  HETNET_CHECK(kind_ == Kind::kNumber, "not a JSON number");
  return num_;
}

const std::string& Value::as_string() const {
  HETNET_CHECK(kind_ == Kind::kString, "not a JSON string");
  return str_;
}

void Value::push(Value v) {
  HETNET_CHECK(kind_ == Kind::kArray, "push on a non-array");
  items_.push_back(std::move(v));
}

const std::vector<Value>& Value::items() const {
  HETNET_CHECK(kind_ == Kind::kArray, "items of a non-array");
  return items_;
}

std::size_t Value::size() const {
  HETNET_CHECK(kind_ == Kind::kArray || kind_ == Kind::kObject,
               "size of a non-container");
  return kind_ == Kind::kArray ? items_.size() : members_.size();
}

void Value::set(const std::string& key, Value v) {
  HETNET_CHECK(kind_ == Kind::kObject, "set on a non-object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

bool Value::has(const std::string& key) const {
  HETNET_CHECK(kind_ == Kind::kObject, "member lookup on a non-object");
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

const Value& Value::at(const std::string& key) const {
  HETNET_CHECK(kind_ == Kind::kObject, "member lookup on a non-object");
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  HETNET_CHECK(false, "missing JSON member '" + key + "'");
  std::abort();  // unreachable: HETNET_CHECK(false) throws
}

double Value::num_at(const std::string& key) const {
  return at(key).as_number();
}

bool Value::bool_at(const std::string& key) const { return at(key).as_bool(); }

const std::string& Value::str_at(const std::string& key) const {
  return at(key).as_string();
}

namespace {

void write_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void write_number(std::string* out, double v) {
  // Integers print without an exponent or trailing zeros; everything else
  // uses enough digits for an exact double round trip.
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  *out += buf;
}

}  // namespace

void Value::write(std::string* out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      write_number(out, num_);
      break;
    case Kind::kString:
      write_escaped(out, str_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        *out += inner;
        items_[i].write(out, indent + 1);
        if (i + 1 < items_.size()) out->push_back(',');
        out->push_back('\n');
      }
      *out += pad + "]";
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        *out += inner;
        write_escaped(out, members_[i].first);
        *out += ": ";
        members_[i].second.write(out, indent + 1);
        if (i + 1 < members_.size()) out->push_back(',');
        out->push_back('\n');
      }
      *out += pad + "}";
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(&out, 0);
  out.push_back('\n');
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    HETNET_CHECK(pos_ == text_.size(),
                 "trailing bytes after JSON document at offset " +
                     std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    HETNET_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    HETNET_CHECK(pos_ < text_.size() && text_[pos_] == c,
                 std::string("expected '") + c + "' at offset " +
                     std::to_string(pos_));
    ++pos_;
  }

  bool try_consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::string parse_string_token() {
    expect('"');
    std::string out;
    while (true) {
      HETNET_CHECK(pos_ < text_.size(), "unterminated JSON string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        HETNET_CHECK(pos_ < text_.size(), "unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'u': {
            HETNET_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
            const unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // Repro files only escape control characters (< 0x20); anything
            // in the BMP below 0x80 maps to one byte.
            HETNET_CHECK(code < 0x80,
                         "only ASCII \\u escapes are supported in repros");
            out.push_back(static_cast<char>(code));
            break;
          }
          default:
            HETNET_CHECK(false, std::string("unsupported escape '\\") + e +
                                    "' at offset " + std::to_string(pos_));
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value::string(parse_string_token());
    if (try_consume("true")) return Value::boolean(true);
    if (try_consume("false")) return Value::boolean(false);
    if (try_consume("null")) return Value();
    // Number.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    HETNET_CHECK(end != start, "malformed JSON value at offset " +
                                   std::to_string(pos_));
    pos_ += static_cast<std::size_t>(end - start);
    return Value::number(v);
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string_token();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace hetnet::fuzz::json
