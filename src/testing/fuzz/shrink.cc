#include "src/testing/fuzz/shrink.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

namespace hetnet::fuzz {
namespace {

FuzzScenario drop_connection(const FuzzScenario& s, int idx) {
  FuzzScenario t = s;
  t.connections.erase(t.connections.begin() + idx);
  std::vector<FuzzOp> kept;
  for (const FuzzOp& op : t.ops) {
    if (op.conn == idx) continue;
    FuzzOp o = op;
    if (o.conn > idx) --o.conn;
    kept.push_back(o);
  }
  t.ops = std::move(kept);
  return t;
}

FuzzScenario drop_op(const FuzzScenario& s, int idx) {
  FuzzScenario t = s;
  t.ops.erase(t.ops.begin() + idx);
  return t;
}

// Halves the gap to `target`, snapping once the remaining gap is tiny.
// Returns false when the value is already at the target (no candidate).
bool toward(double* x, double target) {
  if (*x == target) return false;
  const double next = target + (*x - target) * 0.5;
  const double scale = std::max({1.0, std::fabs(*x), std::fabs(target)});
  *x = std::fabs(next - target) < 1e-9 * scale ? target : next;
  return true;
}

bool toward_int(int* x, int target) {
  if (*x == target) return false;
  *x += (*x > target) ? -std::max(1, (*x - target) / 2)
                      : std::max(1, (target - *x) / 2);
  return true;
}

// One pass worth of candidate transformations of `s`, cheapest-win first:
// structural deletions, then topology reductions, then parameter nudges.
std::vector<FuzzScenario> candidates(const FuzzScenario& s) {
  std::vector<FuzzScenario> out;
  for (int i = 0; i < static_cast<int>(s.connections.size()); ++i) {
    out.push_back(drop_connection(s, i));
  }
  for (int i = static_cast<int>(s.ops.size()) - 1; i >= 0; --i) {
    out.push_back(drop_op(s, i));
  }
  if (s.num_rings > 1) {
    FuzzScenario t = s;
    --t.num_rings;
    out.push_back(std::move(t));
  }
  if (s.hosts_per_ring > 1) {
    FuzzScenario t = s;
    t.hosts_per_ring = std::max(1, t.hosts_per_ring / 2);
    out.push_back(std::move(t));
  }
  if (s.line_backbone) {
    FuzzScenario t = s;
    t.line_backbone = false;
    out.push_back(std::move(t));
  }
  // Media reductions: the all-default FDDI/ATM chain is the simplest
  // reading of a heterogeneous hop sequence.
  if (!s.ring_media.empty()) {
    FuzzScenario t = s;
    t.ring_media.clear();
    out.push_back(std::move(t));
  }
  if (s.backbone_medium != "atm") {
    FuzzScenario t = s;
    t.backbone_medium = "atm";
    out.push_back(std::move(t));
  }
  {
    const FuzzScenario defaults;  // scenario.h field defaults
    FuzzScenario t = s;
    double v = val(t.ttrt);
    if (toward(&v, val(defaults.ttrt))) {
      t.ttrt = Seconds{v};
      out.push_back(t);
    }
    t = s;
    v = val(t.protocol_overhead);
    if (toward(&v, val(defaults.protocol_overhead))) {
      t.protocol_overhead = Seconds{v};
      out.push_back(t);
    }
    t = s;
    if (toward(&t.beta, defaults.beta)) out.push_back(t);
    t = s;
    if (toward_int(&t.bisection_iters, defaults.bisection_iters)) {
      out.push_back(t);
    }
    t = s;
    if (t.async_fill != 0.0) {
      t.async_fill = 0.0;
      out.push_back(t);
    }
    // Shorter simulations shrink the repro's wall-clock cost, which counts
    // as "smaller" for a human replaying it.
    t = s;
    v = val(t.sim_duration);
    if (toward(&v, 0.25)) {
      t.sim_duration = Seconds{v};
      out.push_back(t);
    }
  }
  for (int i = 0; i < static_cast<int>(s.connections.size()); ++i) {
    const FuzzConnection& c = s.connections[static_cast<std::size_t>(i)];
    if (isfinite(c.peak)) {
      FuzzScenario t = s;
      t.connections[static_cast<std::size_t>(i)].peak =
          BitsPerSecond::infinity();
      out.push_back(std::move(t));
    }
    // A plain periodic source (C2 = C1, P2 = P1) is the simplest reading of
    // the dual-periodic model.
    if (val(c.c2) != val(c.c1) || val(c.p2) != val(c.p1)) {
      FuzzScenario t = s;
      FuzzConnection& tc = t.connections[static_cast<std::size_t>(i)];
      tc.c2 = tc.c1;
      tc.p2 = tc.p1;
      out.push_back(std::move(t));
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrink_scenario(const FuzzScenario& failing,
                             const FailurePredicate& still_fails,
                             int max_attempts) {
  ShrinkResult result;
  result.scenario = failing;
  const auto fingerprint = [](const FuzzScenario& s) {
    return scenario_to_json(s).dump();
  };
  std::string best_fp = fingerprint(result.scenario);
  bool progress = true;
  while (progress && result.attempts < max_attempts) {
    progress = false;
    for (FuzzScenario& cand : candidates(result.scenario)) {
      if (result.attempts >= max_attempts) break;
      normalize_scenario(&cand);
      const std::string fp = fingerprint(cand);
      if (fp == best_fp) continue;  // normalization undid the transformation
      ++result.attempts;
      if (still_fails(cand)) {
        result.scenario = std::move(cand);
        best_fp = fp;
        ++result.steps;
        progress = true;
        break;  // restart the pass on the smaller scenario
      }
    }
  }
  return result;
}

}  // namespace hetnet::fuzz
