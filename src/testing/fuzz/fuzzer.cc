#include "src/testing/fuzz/fuzzer.h"

#include <fstream>
#include <utility>

#include "src/net/topology.h"
#include "src/obs/explain.h"
#include "src/testing/fuzz/oracles.h"
#include "src/testing/fuzz/shrink.h"
#include "src/util/check.h"

namespace hetnet::fuzz {
namespace {

std::vector<std::string> failing_names(
    const std::vector<OracleResult>& verdicts) {
  std::vector<std::string> names;
  for (const OracleResult& v : verdicts) {
    if (!v.ok) names.push_back(v.oracle);
  }
  return names;
}

std::string write_repro_file(const FuzzFailure& failure,
                             const std::string& dir) {
  const std::string path =
      dir + "/repro_seed_" + std::to_string(failure.seed) + ".json";
  std::ofstream out(path);
  HETNET_CHECK(out.good(), "cannot open repro file " + path);
  out << failure_to_json(failure).dump();
  HETNET_CHECK(out.good(), "failed writing repro file " + path);
  return path;
}

// Replays the (shrunk) failing scenario once more through an explain-
// instrumented controller and writes the per-request decision records
// beside the repro, so a failure report carries the controller's own
// account of every admit along the op sequence.
std::string write_explain_file(const FuzzFailure& failure,
                               const std::string& dir) {
  const std::string path = dir + "/repro_seed_" +
                           std::to_string(failure.seed) + ".explain.ndjson";
  obs::ExplainSink sink;
  const net::AbhnTopology topo(topology_params(failure.scenario));
  core::CacConfig cfg = cac_config(failure.scenario, /*incremental=*/true);
  cfg.explain = &sink;
  core::AdmissionController cac(&topo, cfg);
  replay_scenario(failure.scenario, &cac);
  std::ofstream out(path);
  HETNET_CHECK(out.good(), "cannot open explain file " + path);
  sink.write_ndjson(out);
  HETNET_CHECK(out.good(), "failed writing explain file " + path);
  return path;
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options, std::ostream* log) {
  FuzzReport report;
  for (int i = 0; i < options.num_seeds; ++i) {
    const std::uint64_t seed =
        options.first_seed + static_cast<std::uint64_t>(i);
    const FuzzScenario scenario = generate_scenario(seed);
    const std::vector<OracleResult> verdicts =
        run_all_oracles(scenario, options.oracle);
    ++report.seeds_run;
    const std::vector<std::string> failing = failing_names(verdicts);
    if (failing.empty()) continue;

    FuzzFailure failure;
    failure.seed = seed;
    failure.scenario = scenario;
    failure.verdicts = verdicts;
    if (log != nullptr) {
      *log << "seed " << seed << ": FAIL (" << describe_scenario(scenario)
           << ")\n";
      for (const OracleResult& v : verdicts) {
        if (!v.ok) *log << "  " << v.oracle << ": " << v.detail << "\n";
      }
    }
    if (options.shrink) {
      // Chase the same failure: the shrunk scenario must still trip at
      // least one of the oracles that failed on the original.
      const auto still_fails = [&](const FuzzScenario& s) {
        for (const std::string& name : failing) {
          if (!run_oracle(name, s, options.oracle).ok) return true;
        }
        return false;
      };
      const ShrinkResult shrunk = shrink_scenario(
          scenario, still_fails, options.max_shrink_attempts);
      failure.scenario = shrunk.scenario;
      failure.verdicts = run_all_oracles(shrunk.scenario, options.oracle);
      failure.shrink_steps = shrunk.steps;
      failure.shrink_attempts = shrunk.attempts;
      if (log != nullptr && shrunk.steps > 0) {
        *log << "  shrunk in " << shrunk.steps << " steps ("
             << shrunk.attempts << " attempts) to "
             << describe_scenario(shrunk.scenario) << "\n";
      }
    }
    if (!options.repro_dir.empty()) {
      failure.repro_path = write_repro_file(failure, options.repro_dir);
      failure.explain_path = write_explain_file(failure, options.repro_dir);
      if (log != nullptr) {
        *log << "  repro: " << failure.repro_path << "\n"
             << "  explain: " << failure.explain_path << "\n";
      }
    }
    report.failures.push_back(std::move(failure));
  }
  if (log != nullptr) {
    *log << report.seeds_run << " seeds, " << report.failures.size()
         << " failing\n";
  }
  return report;
}

json::Value failure_to_json(const FuzzFailure& failure) {
  json::Value repro = json::Value::object();
  repro.set("format", json::Value::string("hetnet-fuzz-repro-v1"));
  repro.set("seed", json::Value::string(std::to_string(failure.seed)));
  repro.set("scenario", scenario_to_json(failure.scenario));
  json::Value verdicts = json::Value::array();
  for (const OracleResult& v : failure.verdicts) {
    json::Value entry = json::Value::object();
    entry.set("oracle", json::Value::string(v.oracle));
    entry.set("ok", json::Value::boolean(v.ok));
    entry.set("detail", json::Value::string(v.detail));
    verdicts.push(std::move(entry));
  }
  repro.set("verdicts", std::move(verdicts));
  json::Value shrink = json::Value::object();
  shrink.set("steps", json::Value::number(failure.shrink_steps));
  shrink.set("attempts", json::Value::number(failure.shrink_attempts));
  repro.set("shrink", std::move(shrink));
  return repro;
}

FuzzFailure failure_from_json(const json::Value& value) {
  HETNET_CHECK(value.str_at("format") == "hetnet-fuzz-repro-v1",
               "unrecognized repro format (want hetnet-fuzz-repro-v1)");
  FuzzFailure failure;
  failure.seed = std::stoull(value.str_at("seed"));
  failure.scenario = scenario_from_json(value.at("scenario"));
  for (const json::Value& entry : value.at("verdicts").items()) {
    failure.verdicts.push_back({entry.str_at("oracle"),
                                entry.bool_at("ok"),
                                entry.str_at("detail")});
  }
  const json::Value& shrink = value.at("shrink");
  failure.shrink_steps = static_cast<int>(shrink.num_at("steps"));
  failure.shrink_attempts = static_cast<int>(shrink.num_at("attempts"));
  return failure;
}

ReplayOutcome replay_repro(const json::Value& repro,
                           const OracleOptions& options) {
  const FuzzFailure recorded = failure_from_json(repro);
  ReplayOutcome outcome;
  outcome.recorded = recorded.verdicts;
  outcome.fresh = run_all_oracles(recorded.scenario, options);
  outcome.matches_recorded =
      outcome.fresh.size() == outcome.recorded.size();
  if (outcome.matches_recorded) {
    for (std::size_t i = 0; i < outcome.fresh.size(); ++i) {
      if (outcome.fresh[i].oracle != outcome.recorded[i].oracle ||
          outcome.fresh[i].ok != outcome.recorded[i].ok) {
        outcome.matches_recorded = false;
        break;
      }
    }
  }
  return outcome;
}

}  // namespace hetnet::fuzz
