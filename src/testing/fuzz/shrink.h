// Greedy scenario shrinking.
//
// Given a failing scenario and a predicate that re-checks the failure, the
// shrinker repeatedly applies structure-reducing transformations — drop a
// connection (remapping the churn sequence), drop a churn op, remove a ring
// or host column, move TTRT/Δ/β/durations toward their defaults, lift peak
// limits — keeping a transformed scenario only when the predicate still
// fails on it. The result is a local minimum: no single transformation can
// make it smaller without losing the failure.
//
// The predicate is called on normalized scenarios only, so it can assume
// the validity invariants documented in scenario.h.
#pragma once

#include <functional>

#include "src/testing/fuzz/scenario.h"

namespace hetnet::fuzz {

// Returns true when the scenario still exhibits the failure being chased.
using FailurePredicate = std::function<bool(const FuzzScenario&)>;

struct ShrinkResult {
  FuzzScenario scenario;  // the shrunk scenario (== input if nothing helped)
  int steps = 0;          // accepted transformations
  int attempts = 0;       // predicate evaluations spent
};

// Greedily shrinks `failing` (which must satisfy `still_fails`) until no
// transformation helps or `max_attempts` predicate calls have been spent.
ShrinkResult shrink_scenario(const FuzzScenario& failing,
                             const FailurePredicate& still_fails,
                             int max_attempts = 200);

}  // namespace hetnet::fuzz
