#include "src/testing/fuzz/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <exception>
#include <memory>
#include <utility>

#include "src/core/analyzer.h"
#include "src/fddi/ring.h"
#include "src/obs/span.h"
#include "src/server/admissiond.h"
#include "src/servers/conversion.h"
#include "src/sim/packet_sim.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace hetnet::fuzz {
namespace {

constexpr double kRelTol = 1e-9;

std::string fmt(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

struct Replay {
  // One entry per op; release ops carry a default-constructed decision.
  std::vector<core::AdmissionDecision> decisions;
  std::vector<core::ConnectionInstance> final_set;
};

Replay replay_ops(const FuzzScenario& s, core::AdmissionController* cac) {
  Replay r;
  std::vector<bool> live(s.connections.size(), false);
  for (const FuzzOp& op : s.ops) {
    if (op.release) {
      if (op.conn >= 0 &&
          op.conn < static_cast<int>(live.size()) &&
          live[static_cast<std::size_t>(op.conn)]) {
        cac->release(static_cast<net::ConnectionId>(op.conn + 1));
        live[static_cast<std::size_t>(op.conn)] = false;
      }
      r.decisions.emplace_back();
    } else {
      const core::AdmissionDecision d =
          cac->request(connection_spec(s, op.conn));
      live[static_cast<std::size_t>(op.conn)] = d.admitted;
      r.decisions.push_back(d);
    }
  }
  for (const auto& [id, conn] : cac->active()) {
    r.final_set.push_back({conn.spec, conn.alloc});
  }
  return r;
}

bool leq_with_tol(Seconds a, Seconds b) {
  // a <= b, allowing relative rounding slack; +inf <= +inf holds.
  if (std::isinf(val(b))) return true;
  return val(a) <= val(b) * (1 + kRelTol);
}

bool same_seconds(Seconds x, Seconds y) {
  return val(x) == val(y) || (std::isinf(val(x)) && std::isinf(val(y)));
}

// Decision-by-decision bit-equality of two replays of the same op sequence.
// Returns the empty string when identical, else a detail naming the first
// diverging op and field; `label` names engine B in the message (engine A
// is always the reference).
std::string compare_replays(const Replay& a, const Replay& b,
                            const char* label) {
  HETNET_CHECK(a.decisions.size() == b.decisions.size(),
               "replays must see the same ops");
  const auto& same = same_seconds;
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    const auto& da = a.decisions[i];
    const auto& db = b.decisions[i];
    std::string field;
    if (da.admitted != db.admitted) {
      field = "admitted";
    } else if (da.reason != db.reason) {
      field = "reason";
    } else if (!same(da.alloc.h_s, db.alloc.h_s) ||
               !same(da.alloc.h_r, db.alloc.h_r)) {
      field = "alloc";
    } else if (!same(da.worst_case_delay, db.worst_case_delay)) {
      field = "worst_case_delay";
    } else if (!same(da.max_avail.h_s, db.max_avail.h_s) ||
               !same(da.max_avail.h_r, db.max_avail.h_r)) {
      field = "max_avail";
    } else if (!same(da.min_need.h_s, db.min_need.h_s) ||
               !same(da.min_need.h_r, db.min_need.h_r)) {
      field = "min_need";
    } else if (!same(da.max_need.h_s, db.max_need.h_s) ||
               !same(da.max_need.h_r, db.max_need.h_r)) {
      field = "max_need";
    }
    if (!field.empty()) {
      return fmt(
          "op %zu: reference and %s CAC disagree on %s "
          "(reference admitted=%d h_s=%.17g, %s admitted=%d h_s=%.17g)",
          i, label, field.c_str(), da.admitted, val(da.alloc.h_s), label,
          db.admitted, val(db.alloc.h_s));
    }
  }
  return "";
}

}  // namespace

OracleResult check_bound_soundness(const FuzzScenario& s,
                                   const OracleOptions& options) {
  OracleResult result{"bound_soundness", true, ""};
  const net::AbhnTopology topo(topology_params(s));
  core::AdmissionController cac(&topo, cac_config(s, true));
  const Replay replay = replay_ops(s, &cac);
  if (replay.final_set.empty()) return result;

  // Analytic invariant: after arbitrary churn, every surviving contract
  // still holds under the joint analysis (releases only remove cross
  // traffic, so bounds must not have grown past deadlines).
  const auto bounds = cac.analyzer().analyze(replay.final_set);
  for (std::size_t i = 0; i < replay.final_set.size(); ++i) {
    const auto& inst = replay.final_set[i];
    if (!std::isfinite(val(bounds[i]))) {
      result.ok = false;
      result.detail = fmt("conn %llu: joint bound infinite after churn",
                          static_cast<unsigned long long>(inst.spec.id));
      return result;
    }
    if (!leq_with_tol(bounds[i], inst.spec.deadline)) {
      result.ok = false;
      result.detail =
          fmt("conn %llu: joint bound %.9g ms exceeds deadline %.9g ms",
              static_cast<unsigned long long>(inst.spec.id),
              val(bounds[i]) * 1e3, val(inst.spec.deadline) * 1e3);
      return result;
    }
  }
  if (!options.run_packet_sim) return result;

  // Empirical domination under adversarial phase alignment, at zero async
  // fill and at the scenario's stretched-rotation level.
  sim::PacketSimConfig cfg;
  cfg.duration = s.sim_duration * std::max(0.05, options.sim_scale);
  cfg.seed = s.sim_seed;
  cfg.randomize_phases = false;
  std::vector<double> fills = {0.0};
  if (s.async_fill > 0.0) fills.push_back(s.async_fill);
  for (const double fill : fills) {
    cfg.async_fill = fill;
    const sim::PacketSimResult sim =
        sim::run_packet_simulation(topo, replay.final_set, cfg);
    if (val(sim.max_token_rotation) > val(s.ttrt) * (1 + kRelTol)) {
      result.ok = false;
      result.detail = fmt(
          "token rotation %.9g ms exceeded TTRT %.9g ms (async_fill %.2f)",
          val(sim.max_token_rotation) * 1e3, val(s.ttrt) * 1e3, fill);
      return result;
    }
    for (std::size_t i = 0; i < replay.final_set.size(); ++i) {
      const sim::ConnectionTrace& trace = sim.connections[i];
      if (trace.messages_delivered == 0) continue;
      const double sim_max = trace.delay.max();
      if (sim_max > val(bounds[i]) * (1 + kRelTol)) {
        result.ok = false;
        result.detail = fmt(
            "conn %llu: simulated max delay %.9g ms exceeds analytic bound "
            "%.9g ms (async_fill %.2f, %zu delivered)",
            static_cast<unsigned long long>(
                replay.final_set[i].spec.id),
            sim_max * 1e3, val(bounds[i]) * 1e3, fill,
            trace.messages_delivered);
        return result;
      }
    }
  }
  return result;
}

OracleResult check_incremental_equivalence(const FuzzScenario& s) {
  OracleResult result{"incremental_equivalence", true, ""};
  const net::AbhnTopology topo(topology_params(s));
  core::AdmissionController warm(&topo, cac_config(s, true));
  core::AdmissionController cold(&topo, cac_config(s, false));
  const Replay a = replay_ops(s, &warm);
  const Replay b = replay_ops(s, &cold);
  const std::string diff = compare_replays(a, b, "cold");
  if (!diff.empty()) {
    result.ok = false;
    result.detail = diff;
    return result;
  }
  for (int ring = 0; ring < s.num_rings; ++ring) {
    if (val(warm.ledger(ring).allocated()) !=
        val(cold.ledger(ring).allocated())) {
      result.ok = false;
      result.detail = fmt("ring %d: ledger divergence after churn "
                          "(incremental %.17g s, cold %.17g s)",
                          ring, val(warm.ledger(ring).allocated()),
                          val(cold.ledger(ring).allocated()));
      return result;
    }
  }
  return result;
}

OracleResult check_line_monotonicity(const FuzzScenario& s) {
  // End-to-end delay along the bisection line is NOT strictly monotone in
  // this reproduction: the frame size F_S = H·BW couples the allocation
  // into the Theorem-2 ⌈A/F_S⌉ quantization, so isolated H_S values
  // inflate the converted envelope by one frame quantum and bump the
  // downstream FIFO bound (the fuzzer's first latent-bug sweep measured
  // ~0.3% spikes; count_convexity_violations quantifies the same effect in
  // 2-D). The CAC is robust to it — it re-checks every deadline at the
  // final allocation and falls back toward max_avail (cac.cc, step 5) —
  // so this oracle asserts the properties admission soundness really
  // rests on: the Theorem-1 send prefix IS monotone in H_S, the probe
  // surface is self-consistent and deterministic (warm == cold,
  // re-evaluation is pure), and the request path agrees bit-for-bit with
  // the probe path at its own decision points.
  OracleResult result{"line_monotonicity", true, ""};
  const net::AbhnTopology topo(topology_params(s));
  core::AdmissionController warm(&topo, cac_config(s, true));
  replay_ops(s, &warm);
  core::AdmissionController cold(&topo, cac_config(s, false));
  replay_ops(s, &cold);
  const auto same = [](Seconds x, Seconds y) {
    return val(x) == val(y) || (std::isinf(val(x)) && std::isinf(val(y)));
  };

  constexpr int kSamples = 9;
  const int probes =
      std::min<int>(4, static_cast<int>(s.connections.size()));
  for (int c = 0; c < probes; ++c) {
    net::ConnectionSpec spec = connection_spec(s, c);
    spec.id = static_cast<net::ConnectionId>(10000 + c);  // hypothetical
    const Seconds h_min = warm.config().h_min_abs;
    const Seconds hs_max = warm.ledger(spec.src.ring).available();
    const Seconds hr_max = warm.ledger(spec.dst.ring).available();
    if (hs_max <= h_min || hr_max <= h_min) continue;  // no line to walk
    Seconds prev_prefix = Seconds::infinity();
    bool prev_prefix_finite = false;
    for (int k = 0; k < kSamples; ++k) {
      const double t = static_cast<double>(k) / (kSamples - 1);
      const net::Allocation alloc{h_min + (hs_max - h_min) * t,
                                  h_min + (hr_max - h_min) * t};

      // Theorem 1: the private send prefix (host MAC through conversion)
      // sees only its own allocation — more bandwidth can never hurt it.
      const core::SendPrefix prefix =
          warm.analyzer().send_prefix(spec, alloc.h_s);
      if (k > 0 && prev_prefix_finite && !prefix.finite) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: send prefix became unbounded as H_S grew "
            "(t=%.3f)",
            c, t);
        return result;
      }
      if (k > 0 && prefix.finite && prev_prefix_finite &&
          !leq_with_tol(prefix.delay, prev_prefix)) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: Theorem-1 send-prefix delay rose with H_S at "
            "t=%.3f (%.9g ms after %.9g ms)",
            c, t, val(prefix.delay) * 1e3, val(prev_prefix) * 1e3);
        return result;
      }
      prev_prefix_finite = prefix.finite;
      if (prefix.finite) prev_prefix = prefix.delay;

      // Probe purity + warm/cold equivalence (the PR-2 bit-identical
      // contract, exercised through the probe entry points).
      const Seconds d1 = warm.delay_at(spec, alloc);
      const bool f1 = warm.feasible_at(spec, alloc);
      const Seconds d2 = warm.delay_at(spec, alloc);
      const bool f2 = warm.feasible_at(spec, alloc);
      if (!same(d1, d2) || f1 != f2) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: re-evaluating the same allocation changed the "
            "answer at t=%.3f (%.17g -> %.17g, feasible %d -> %d) — "
            "incremental cache corruption",
            c, t, val(d1), val(d2), f1, f2);
        return result;
      }
      const Seconds dc = cold.delay_at(spec, alloc);
      const bool fc = cold.feasible_at(spec, alloc);
      if (!same(d1, dc) || f1 != fc) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: incremental and cold probes disagree at t=%.3f "
            "(delay %.17g vs %.17g, feasible %d vs %d)",
            c, t, val(d1), val(dc), f1, fc);
        return result;
      }
      if (f1 && !std::isfinite(val(d1))) {
        result.ok = false;
        result.detail =
            fmt("probe conn %d: feasible at t=%.3f with an infinite "
                "requester bound",
                c, t);
        return result;
      }
      if (f1 && !leq_with_tol(d1, spec.deadline)) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: allocation reported feasible at t=%.3f but the "
            "requester's own bound %.9g ms exceeds its deadline %.9g ms",
            c, t, val(d1) * 1e3, val(spec.deadline) * 1e3);
        return result;
      }
    }

    // Request-path vs probe-path differential: run the real CAC on a
    // scratch controller and check its decision against the (identical,
    // still pre-admission) warm controller's probe surface.
    core::AdmissionController scratch(&topo, cac_config(s, true));
    replay_ops(s, &scratch);
    const core::AdmissionDecision decision = scratch.request(spec);
    if (decision.admitted) {
      if (!leq_with_tol(decision.worst_case_delay, spec.deadline)) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: admitted with bound %.9g ms over deadline "
            "%.9g ms",
            c, val(decision.worst_case_delay) * 1e3,
            val(spec.deadline) * 1e3);
        return result;
      }
      if (!warm.feasible_at(spec, decision.alloc)) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: request admitted at an allocation the probe "
            "surface calls infeasible",
            c);
        return result;
      }
      const Seconds probed = warm.delay_at(spec, decision.alloc);
      if (!same(probed, decision.worst_case_delay)) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: request-path bound %.17g s and probe-path "
            "bound %.17g s disagree at the granted allocation",
            c, val(decision.worst_case_delay), val(probed));
        return result;
      }
    } else if (decision.reason == core::RejectReason::kInfeasible) {
      if (warm.feasible_at(spec, decision.max_avail)) {
        result.ok = false;
        result.detail = fmt(
            "probe conn %d: rejected as infeasible but the probe surface "
            "calls max_avail feasible (Theorem-4 anchor mismatch)",
            c);
        return result;
      }
    }
  }
  return result;
}

OracleResult check_parallel_equivalence(const FuzzScenario& s) {
  // PR-4 contract: the parallel engine — wave-parallel joint analysis,
  // parallel prefix/suffix fan-out, and (at 8 threads) speculative
  // bisection batching with session overlays — must produce bit-identical
  // admission decisions to the serial engine at every thread count. 2
  // threads exercises the fork/join paths without speculation; 8 threads
  // adds depth-3 speculative probe batching.
  OracleResult result{"parallel_equivalence", true, ""};
  const net::AbhnTopology topo(topology_params(s));
  core::AdmissionController serial(&topo, cac_config(s, true));
  const Replay ref = replay_ops(s, &serial);
  for (const int threads : {2, 8}) {
    core::CacConfig cfg = cac_config(s, true);
    cfg.analysis.threads = threads;
    core::AdmissionController par(&topo, cfg);
    const Replay got = replay_ops(s, &par);
    const std::string label = fmt("parallel(%d)", threads);
    const std::string diff = compare_replays(ref, got, label.c_str());
    if (!diff.empty()) {
      result.ok = false;
      result.detail = diff;
      return result;
    }
    for (int ring = 0; ring < s.num_rings; ++ring) {
      if (val(serial.ledger(ring).allocated()) !=
          val(par.ledger(ring).allocated())) {
        result.ok = false;
        result.detail =
            fmt("ring %d: ledger divergence between serial and %d-thread "
                "engines (%.17g s vs %.17g s)",
                ring, threads, val(serial.ledger(ring).allocated()),
                val(par.ledger(ring).allocated()));
        return result;
      }
    }
  }
  return result;
}

OracleResult check_tiered_equivalence(const FuzzScenario& s) {
  // PR-7 contract: the tiered admission path — Tier-A floor / kUp-screen
  // certificates plus the Tier-B decision memo — must produce bit-identical
  // admission decisions to the untiered incremental engine. The screen's
  // admit certificates rest on a margin over a measured deviation (see
  // CacConfig::screen_margin), so this oracle is the adversarial audit of
  // that margin across generated topologies, TTRTs, β values, and churn.
  // Replayed at 1 and 8 threads: speculative bisection batching prefetches
  // into the same decision memo the tiers read, so the combination gets
  // its own coverage.
  OracleResult result{"tiered_equivalence", true, ""};
  const net::AbhnTopology topo(topology_params(s));
  for (const int threads : {1, 8}) {
    core::CacConfig on = cac_config(s, true);
    on.tiered = true;
    on.analysis.threads = threads;
    core::CacConfig off = on;
    off.tiered = false;
    core::AdmissionController tiered(&topo, on);
    core::AdmissionController untiered(&topo, off);
    const Replay ref = replay_ops(s, &untiered);
    const Replay got = replay_ops(s, &tiered);
    const std::string label = fmt("tiered(%d)", threads);
    const std::string diff = compare_replays(ref, got, label.c_str());
    if (!diff.empty()) {
      result.ok = false;
      result.detail = diff;
      return result;
    }
    for (int ring = 0; ring < s.num_rings; ++ring) {
      if (val(untiered.ledger(ring).allocated()) !=
          val(tiered.ledger(ring).allocated())) {
        result.ok = false;
        result.detail =
            fmt("ring %d: ledger divergence between untiered and tiered "
                "engines at %d threads (%.17g s vs %.17g s)",
                ring, threads, val(untiered.ledger(ring).allocated()),
                val(tiered.ledger(ring).allocated()));
        return result;
      }
    }
  }
  return result;
}

OracleResult check_admissiond_equivalence(const FuzzScenario& s) {
  // PR-8 contract: the admissiond service's sharded ingestion, batched
  // rounds, and prewarm fan-out only reorder WORK — commits happen in seq
  // order against identical ledger state — so a batched/parallel service
  // must produce outcome-by-outcome identical decisions to a serial
  // service replay of the same request sequence. (Service semantics differ
  // deliberately from replay_ops: RELEASE of a non-live id is a counted
  // no-op and SETUP of a live id a collision reject, so both sides of this
  // comparison are services.)
  OracleResult result{"admissiond_equivalence", true, ""};
  const net::AbhnTopology topo(topology_params(s));

  std::vector<server::Request> requests;
  std::uint64_t seq = 0;
  for (const FuzzOp& op : s.ops) {
    server::Request req;
    req.seq = seq++;
    req.id = static_cast<net::ConnectionId>(op.conn + 1);
    if (op.release) {
      req.type = server::RequestType::kRelease;
    } else {
      req.type = server::RequestType::kSetup;
      req.spec = connection_spec(s, op.conn);
    }
    requests.push_back(std::move(req));
  }

  const auto run_service = [&](const server::AdmissiondConfig& config) {
    auto service = std::make_unique<server::AdmissionService>(&topo, config);
    for (const server::Request& req : requests) {
      service->submit(req);
      if (service->pending() >= 4 * config.batch_size) service->run_round();
    }
    service->run_all();
    return service;
  };

  server::AdmissiondConfig serial;
  serial.cac = cac_config(s, true);
  serial.batch_size = 1;
  serial.prewarm = false;
  serial.record_outcomes = true;
  const auto ref = run_service(serial);

  struct Variant {
    std::size_t batch;
    int threads;
  };
  for (const Variant v : {Variant{4, 2}, Variant{32, 8}}) {
    server::AdmissiondConfig cfg;
    cfg.cac = cac_config(s, true);
    cfg.cac.analysis.threads = v.threads;
    cfg.batch_size = v.batch;
    cfg.prewarm = true;
    cfg.record_outcomes = true;
    const auto got = run_service(cfg);
    const auto& ra = ref->outcomes();
    const auto& rb = got->outcomes();
    if (ra.size() != rb.size()) {
      result.ok = false;
      result.detail = fmt(
          "admissiond(batch=%zu,threads=%d) committed %zu setups, serial "
          "committed %zu",
          v.batch, v.threads, rb.size(), ra.size());
      return result;
    }
    for (std::size_t i = 0; i < ra.size(); ++i) {
      const auto& a = ra[i];
      const auto& b = rb[i];
      if (a.seq != b.seq || a.id != b.id || a.admitted != b.admitted ||
          a.reason != b.reason || !same_seconds(a.alloc.h_s, b.alloc.h_s) ||
          !same_seconds(a.alloc.h_r, b.alloc.h_r) ||
          !same_seconds(a.worst_case_delay, b.worst_case_delay)) {
        result.ok = false;
        result.detail = fmt(
            "setup %zu (seq %llu): admissiond(batch=%zu,threads=%d) "
            "diverges from serial service (admitted %d vs %d, h_s %.17g vs "
            "%.17g)",
            i, static_cast<unsigned long long>(a.seq), v.batch, v.threads,
            b.admitted, a.admitted, val(b.alloc.h_s), val(a.alloc.h_s));
        return result;
      }
    }
    if (got->decision_digest() != ref->decision_digest()) {
      result.ok = false;
      result.detail = fmt(
          "admissiond(batch=%zu,threads=%d) decision digest diverges from "
          "serial service despite outcome-equal setups (release matching "
          "differs)",
          v.batch, v.threads);
      return result;
    }
    for (int ring = 0; ring < s.num_rings; ++ring) {
      if (val(ref->cac().ledger(ring).allocated()) !=
          val(got->cac().ledger(ring).allocated())) {
        result.ok = false;
        result.detail = fmt(
            "ring %d: ledger divergence between serial and "
            "admissiond(batch=%zu,threads=%d) services (%.17g s vs %.17g s)",
            ring, v.batch, v.threads,
            val(ref->cac().ledger(ring).allocated()),
            val(got->cac().ledger(ring).allocated()));
        return result;
      }
    }
  }
  return result;
}

OracleResult check_algebra_invariants(const FuzzScenario& s) {
  OracleResult result{"algebra_invariants", true, ""};
  Rng rng(s.seed ^ 0x9e3779b97f4a7c15ULL);
  const int probes =
      std::min<int>(6, static_cast<int>(s.connections.size()));
  for (int c = 0; c < probes; ++c) {
    const FuzzConnection& fc = s.connections[static_cast<std::size_t>(c)];
    const auto env = std::make_shared<DualPeriodicEnvelope>(
        fc.c1, fc.p1, fc.c2, fc.p2, fc.peak);
    const Seconds horizon = fc.p1 * 2.5;
    const Bits burst = env->burst_bound();
    const BitsPerSecond rate = env->long_term_rate();
    const auto tol = [](Bits reference) {
      return Bits{1e-6 + kRelTol * std::fabs(val(reference))};
    };
    for (int trial = 0; trial < 16; ++trial) {
      const Seconds u = Seconds{rng.uniform(1e-6, val(horizon))};
      const Seconds v = Seconds{rng.uniform(1e-6, val(horizon))};
      const Bits au = env->bits(u);
      const Bits av = env->bits(v);
      const Bits auv = env->bits(u + v);
      if (au > auv + tol(auv)) {
        result.ok = false;
        result.detail = fmt(
            "conn %d: envelope not monotone: A(%.9g) = %.9g > A(%.9g) = "
            "%.9g",
            c, val(u), val(au), val(u + v), val(auv));
        return result;
      }
      if (auv > au + av + tol(au + av)) {
        result.ok = false;
        result.detail = fmt(
            "conn %d: subadditivity violated: A(%.9g)+A(%.9g) = %.9g < "
            "A(%.9g) = %.9g",
            c, val(u), val(v), val(au + av), val(u + v), val(auv));
        return result;
      }
      const Bits majorized = burst + rate * u;
      if (au > majorized + tol(majorized)) {
        result.ok = false;
        result.detail = fmt(
            "conn %d: A(%.9g) = %.9g escapes its leaky-bucket majorization "
            "%.9g (burst %.9g + rho*I)",
            c, val(u), val(au), val(majorized), val(burst));
        return result;
      }
    }

    // Theorem-2 conversion: cells only ever pad, so the converted envelope
    // can never drop below its input (payload accounting, eq. 21).
    const Bits cell_payload = units::bytes(48);
    const fddi::RingParams ring_defaults;
    const Bits frame_payload{
        std::clamp(val(fc.c2), val(cell_payload),
                   val(ring_defaults.max_frame_payload))};
    const auto conv = make_frame_to_cell_server(
        "f2c", frame_payload, cell_payload, cell_payload, units::us(50));
    const auto analysis = conv->analyze(env);
    if (!analysis.has_value()) {
      result.ok = false;
      result.detail =
          fmt("conn %d: frame->cell conversion reported no bound", c);
      return result;
    }
    for (int trial = 0; trial < 16; ++trial) {
      const Seconds u = Seconds{rng.uniform(1e-6, val(horizon))};
      const Bits in = env->bits(u);
      const Bits out = analysis->output->bits(u);
      if (out + tol(in) < in) {
        result.ok = false;
        result.detail = fmt(
            "conn %d: conversion envelope below its input at I=%.9g "
            "(out %.9g < in %.9g)",
            c, val(u), val(out), val(in));
        return result;
      }
    }
  }
  return result;
}

std::vector<OracleResult> run_all_oracles(const FuzzScenario& scenario,
                                          const OracleOptions& options) {
  return {
      run_oracle("bound_soundness", scenario, options),
      run_oracle("incremental_equivalence", scenario, options),
      run_oracle("line_monotonicity", scenario, options),
      run_oracle("parallel_equivalence", scenario, options),
      run_oracle("tiered_equivalence", scenario, options),
      run_oracle("admissiond_equivalence", scenario, options),
      run_oracle("algebra_invariants", scenario, options),
  };
}

std::vector<core::AdmissionDecision> replay_scenario(
    const FuzzScenario& scenario, core::AdmissionController* cac) {
  return replay_ops(scenario, cac).decisions;
}

OracleResult run_oracle(const std::string& name, const FuzzScenario& scenario,
                        const OracleOptions& options) {
  // The span name must be a literal that outlives the recorder, so each
  // known oracle gets its own; unknown names fall through without a span.
  [[maybe_unused]] const char* span_name =
      name == "bound_soundness"          ? "fuzz.bound_soundness"
      : name == "incremental_equivalence" ? "fuzz.incremental_equivalence"
      : name == "line_monotonicity"       ? "fuzz.line_monotonicity"
      : name == "parallel_equivalence"    ? "fuzz.parallel_equivalence"
      : name == "tiered_equivalence"      ? "fuzz.tiered_equivalence"
      : name == "admissiond_equivalence"  ? "fuzz.admissiond_equivalence"
      : name == "algebra_invariants"      ? "fuzz.algebra_invariants"
                                          : "fuzz.oracle";
  HETNET_OBS_SPAN_NAMED(span, span_name, "fuzz");
  span.arg("seed", std::int64_t(scenario.seed));
  try {
    if (name == "bound_soundness") {
      return check_bound_soundness(scenario, options);
    }
    if (name == "incremental_equivalence") {
      return check_incremental_equivalence(scenario);
    }
    if (name == "line_monotonicity") {
      return check_line_monotonicity(scenario);
    }
    if (name == "parallel_equivalence") {
      return check_parallel_equivalence(scenario);
    }
    if (name == "tiered_equivalence") {
      return check_tiered_equivalence(scenario);
    }
    if (name == "admissiond_equivalence") {
      return check_admissiond_equivalence(scenario);
    }
    if (name == "algebra_invariants") {
      return check_algebra_invariants(scenario);
    }
    HETNET_CHECK(false, "unknown oracle '" + name + "'");
  } catch (const std::exception& e) {
    return {name, false, std::string("exception: ") + e.what()};
  }
  return {name, false, "unreachable"};
}

}  // namespace hetnet::fuzz
