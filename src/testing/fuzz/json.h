// Minimal JSON for fuzz repros — no third-party dependencies.
//
// A repro file must survive a round trip bit-for-bit at the semantic level
// (same numbers, same structure), be human-readable in a bug report, and be
// diffable in review. This module provides exactly that: a small document
// value (null/bool/number/string/array/object), a pretty-printing writer,
// and a recursive-descent parser. Object member order is preserved so the
// emitted files are stable across a write→parse→write cycle.
//
// Numbers are doubles; 64-bit seeds are stored as strings by the scenario
// layer (a double cannot hold every uint64 exactly).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hetnet::fuzz::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null

  static Value boolean(bool b);
  static Value number(double v);
  static Value string(std::string s);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Typed accessors; HETNET_CHECK-fail on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // Array operations (value must be an array).
  void push(Value v);
  const std::vector<Value>& items() const;
  std::size_t size() const;

  // Object operations (value must be an object). `set` appends or replaces;
  // member order is insertion order.
  void set(const std::string& key, Value v);
  bool has(const std::string& key) const;
  const Value& at(const std::string& key) const;  // checks presence

  // Convenience typed lookups on objects.
  double num_at(const std::string& key) const;
  bool bool_at(const std::string& key) const;
  const std::string& str_at(const std::string& key) const;

  // Serializes with two-space indentation and a trailing newline at the top
  // level; parse(dump()) reproduces the value exactly.
  std::string dump() const;

  // Parses a complete JSON document. HETNET_CHECK-fails (std::logic_error)
  // on malformed input, with the byte offset in the message.
  static Value parse(const std::string& text);

 private:
  void write(std::string* out, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace hetnet::fuzz::json
