// The ATM-Based Heterogeneous Network (ABHN) topology of Section 3.1:
// access segments (FDDI rings by default) of hosts, one interface device per
// segment, and a switched backbone (ATM by default) interconnecting the
// interface devices.
//
// Which medium serves each segment — and which carries the backbone — is
// DATA: `TopologyParams::access_hops` / `backbone_hop` name media that the
// topology resolves through the medium registry (src/servers/registry.h) at
// construction. The paper's FDDI-ATM-FDDI network is just the default hop
// sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/atm/backbone.h"
#include "src/fddi/ring.h"
#include "src/servers/registry.h"
#include "src/util/units.h"

namespace hetnet::net {

// Host_{i,j}: host j on ring i.
struct HostId {
  int ring = -1;
  int index = -1;

  friend bool operator==(const HostId&, const HostId&) = default;
};

// Constant-delay stages of an interface device (Section 4.3.2); these are
// the "measured or manufacturer-specified" latencies of the paper, given
// datasheet-plausible defaults (see DESIGN.md §2).
struct InterfaceDeviceParams {
  Seconds input_port_delay = units::us(10);        // eq. (18)
  Seconds frame_switch_delay = units::us(10);      // eq. (20)
  Seconds frame_cell_conversion = units::us(50);   // eq. (22)
  Seconds cell_frame_conversion = units::us(50);   // ID_R mirror
  // Transmit buffer of the device's access-side MAC (per connection), used
  // on the receive path when frames queue for the destination segment.
  Bits mac_buffer{1e18};
};

enum class BackboneShape {
  kMesh,  // the paper's evaluation topology (full mesh / triangle)
  kLine,  // switches in a chain: long multi-switch routes
};

struct TopologyParams {
  BackboneShape backbone_shape = BackboneShape::kMesh;
  int num_rings = 3;
  int hosts_per_ring = 4;
  fddi::RingParams ring;
  atm::LinkParams link;
  atm::CellFormat cells;
  Seconds switch_fabric_delay = units::us(10);
  InterfaceDeviceParams interface_device;
  // Transmit buffer of a host's access-side MAC (bits).
  Bits host_mac_buffer{1e18};
  // Per-segment access media: ring i resolves access_hops[i % size()]
  // through the medium registry (must be non-empty). The default — a single
  // default-constructed HopSpec — is the paper's FDDI on every segment.
  std::vector<servers::HopSpec> access_hops{servers::HopSpec{}};
  // The backbone medium shared by every switch link ("atm" by default;
  // "satellite-atm" turns the backbone into a long-delay orbit).
  servers::HopSpec backbone_hop{"atm"};
};

class AbhnTopology {
 public:
  // Builds the topology, resolving every hop's medium through `registry`
  // (the builtin registrations by default). CHECK-fails on an empty hop
  // sequence or an unknown medium name.
  explicit AbhnTopology(const TopologyParams& params,
                        const servers::MediumRegistry& registry =
                            servers::MediumRegistry::builtin());

  const TopologyParams& params() const { return params_; }
  const atm::Backbone& backbone() const { return backbone_; }

  // The resolved access medium of ring i / the backbone medium. The
  // analyzer, CAC ledgers, and packet simulator read every segment
  // parameter through these models.
  const servers::AccessMedium& access_medium(int ring) const;
  const servers::BackboneMedium& backbone_medium() const {
    return *backbone_medium_;
  }
  // Digest over the whole resolved hop sequence (every segment's medium
  // config plus the backbone's, in ring order). Folded into session memo
  // keys and decision digests so fingerprints cover the hop sequence.
  std::uint64_t media_digest() const { return media_digest_; }

  int num_rings() const { return params_.num_rings; }
  int num_hosts() const { return params_.num_rings * params_.hosts_per_ring; }
  // Backbone links between switches (Section 6's per-link load divisor):
  // R(R−1)/2 for the mesh, R−1 for the line, 0 for a single ring.
  int num_backbone_links() const { return backbone_.num_switch_links(); }
  bool valid_host(HostId h) const;

  // Flat host numbering (for workload generators): ring-major order.
  HostId host_at(int flat_index) const;
  int flat_index(HostId h) const;

  // The backbone hops between the source and destination interface devices;
  // EMPTY for hosts on the same ring (Section 4.1 case 1: the ring carries
  // the traffic directly, no interface device involved).
  std::vector<atm::Hop> backbone_route(HostId src, HostId dst) const;

 private:
  TopologyParams params_;
  std::vector<servers::AccessMediumPtr> access_media_;  // one per ring
  servers::BackboneMediumPtr backbone_medium_;
  atm::Backbone backbone_;
  std::uint64_t media_digest_ = 0;
};

// The evaluation scenario of Section 6: 3 FDDI rings × 4 hosts, 3 interface
// devices, 3 ATM switches, 155 Mb/s links.
TopologyParams paper_topology_params();

}  // namespace hetnet::net
