// Real-time connections (Section 3.2): the contract between an application
// and the network — a source traffic specification, a deadline, and a route.
#pragma once

#include <cstdint>

#include "src/net/topology.h"
#include "src/traffic/envelope.h"

namespace hetnet::net {

using ConnectionId = std::uint64_t;

// What the application submits to connection admission control.
struct ConnectionSpec {
  ConnectionId id = 0;
  HostId src;
  HostId dst;
  // Γ_{i,j,A}: traffic at the entrance of the source host's FDDI MAC
  // (payload bits).
  EnvelopePtr source;
  // D_{i,j}: the worst-case end-to-end packet delay must not exceed this.
  Seconds deadline;
};

// The synchronous-bandwidth pair the CAC allocates on admission.
struct Allocation {
  Seconds h_s;  // on the source ring (held by the source host)
  Seconds h_r;  // on the destination ring (held by the ID)

  friend bool operator==(const Allocation&, const Allocation&) = default;
};

// An admitted connection as tracked by the controller.
struct ActiveConnection {
  ConnectionSpec spec;
  Allocation alloc;
};

}  // namespace hetnet::net
