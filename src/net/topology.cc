#include "src/net/topology.h"

#include "src/traffic/fingerprint.h"
#include "src/util/check.h"

namespace hetnet::net {
namespace {

servers::MediumDefaults medium_defaults(const TopologyParams& p) {
  servers::MediumDefaults d;
  d.ring = p.ring;
  d.link = p.link;
  d.cell_payload = p.cells.payload;
  d.input_port_delay = p.interface_device.input_port_delay;
  d.frame_switch_delay = p.interface_device.frame_switch_delay;
  d.frame_cell_conversion = p.interface_device.frame_cell_conversion;
  d.cell_frame_conversion = p.interface_device.cell_frame_conversion;
  d.id_mac_buffer = p.interface_device.mac_buffer;
  d.host_mac_buffer = p.host_mac_buffer;
  return d;
}

std::vector<servers::AccessMediumPtr> resolve_access_media(
    const TopologyParams& p, const servers::MediumRegistry& registry,
    const servers::MediumDefaults& defaults) {
  HETNET_CHECK(!p.access_hops.empty(),
               "empty hop sequence: a topology needs at least one access hop");
  std::vector<servers::AccessMediumPtr> media;
  media.reserve(static_cast<std::size_t>(p.num_rings));
  for (int r = 0; r < p.num_rings; ++r) {
    const servers::HopSpec& hop =
        p.access_hops[static_cast<std::size_t>(r) % p.access_hops.size()];
    media.push_back(registry.resolve_access(hop, defaults));
  }
  return media;
}

atm::Backbone build_backbone(const TopologyParams& p,
                             const atm::LinkParams& link) {
  // A single ring is a degenerate but valid ABHN: all traffic is intra-ring
  // and the backbone carries nothing (workload generators must refuse
  // inter-ring requests on it).
  HETNET_CHECK(p.num_rings >= 1, "an ABHN needs at least one ring");
  HETNET_CHECK(p.hosts_per_ring >= 1, "rings need at least one host");
  switch (p.backbone_shape) {
    case BackboneShape::kLine:
      return atm::make_line_backbone(p.num_rings, link, p.cells,
                                     p.switch_fabric_delay);
    case BackboneShape::kMesh:
      break;
  }
  return atm::make_mesh_backbone(p.num_rings, link, p.cells,
                                 p.switch_fabric_delay);
}

}  // namespace

AbhnTopology::AbhnTopology(const TopologyParams& params,
                           const servers::MediumRegistry& registry)
    : params_(params),
      access_media_(
          resolve_access_media(params, registry, medium_defaults(params))),
      backbone_medium_(registry.resolve_backbone(params.backbone_hop,
                                                 medium_defaults(params))),
      backbone_(build_backbone(params, backbone_medium_->link())) {
  std::uint64_t d = fp::mix(0x0B1A5ull);
  for (const servers::AccessMediumPtr& m : access_media_) {
    d = fp::combine(d, m->config_digest());
  }
  media_digest_ = fp::combine(d, backbone_medium_->config_digest());
}

const servers::AccessMedium& AbhnTopology::access_medium(int ring) const {
  HETNET_CHECK(ring >= 0 && ring < params_.num_rings,
               "ring index out of range");
  return *access_media_[static_cast<std::size_t>(ring)];
}

bool AbhnTopology::valid_host(HostId h) const {
  return h.ring >= 0 && h.ring < params_.num_rings && h.index >= 0 &&
         h.index < params_.hosts_per_ring;
}

HostId AbhnTopology::host_at(int flat_index) const {
  HETNET_CHECK(flat_index >= 0 && flat_index < num_hosts(),
               "host index out of range");
  return {flat_index / params_.hosts_per_ring,
          flat_index % params_.hosts_per_ring};
}

int AbhnTopology::flat_index(HostId h) const {
  HETNET_CHECK(valid_host(h), "invalid host id");
  return h.ring * params_.hosts_per_ring + h.index;
}

std::vector<atm::Hop> AbhnTopology::backbone_route(HostId src,
                                                   HostId dst) const {
  HETNET_CHECK(valid_host(src) && valid_host(dst), "invalid host id");
  // Section 4.1: hosts on the same ring reach each other directly over the
  // ring (case 1) — no backbone hops. Otherwise access i is the interface
  // device of ring i (the mesh builder attaches them in ring order).
  if (src.ring == dst.ring) return {};
  const auto hops = backbone_.route(src.ring, dst.ring);
  HETNET_CHECK(hops.has_value(), "mesh backbone must connect all accesses");
  return *hops;
}

TopologyParams paper_topology_params() {
  TopologyParams p;
  p.num_rings = 3;
  p.hosts_per_ring = 4;
  p.ring = fddi::RingParams{};            // TTRT 8 ms, 100 Mb/s
  p.link = atm::LinkParams{};             // 155 Mb/s
  p.cells = atm::CellFormat{};            // 48/53-byte cells
  return p;
}

}  // namespace hetnet::net
