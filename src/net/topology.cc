#include "src/net/topology.h"

#include "src/util/check.h"

namespace hetnet::net {
namespace {

atm::Backbone build_backbone(const TopologyParams& p) {
  // A single ring is a degenerate but valid ABHN: all traffic is intra-ring
  // and the backbone carries nothing (workload generators must refuse
  // inter-ring requests on it).
  HETNET_CHECK(p.num_rings >= 1, "an ABHN needs at least one ring");
  HETNET_CHECK(p.hosts_per_ring >= 1, "rings need at least one host");
  switch (p.backbone_shape) {
    case BackboneShape::kLine:
      return atm::make_line_backbone(p.num_rings, p.link, p.cells,
                                     p.switch_fabric_delay);
    case BackboneShape::kMesh:
      break;
  }
  return atm::make_mesh_backbone(p.num_rings, p.link, p.cells,
                                 p.switch_fabric_delay);
}

}  // namespace

AbhnTopology::AbhnTopology(const TopologyParams& params)
    : params_(params), backbone_(build_backbone(params)) {}

bool AbhnTopology::valid_host(HostId h) const {
  return h.ring >= 0 && h.ring < params_.num_rings && h.index >= 0 &&
         h.index < params_.hosts_per_ring;
}

HostId AbhnTopology::host_at(int flat_index) const {
  HETNET_CHECK(flat_index >= 0 && flat_index < num_hosts(),
               "host index out of range");
  return {flat_index / params_.hosts_per_ring,
          flat_index % params_.hosts_per_ring};
}

int AbhnTopology::flat_index(HostId h) const {
  HETNET_CHECK(valid_host(h), "invalid host id");
  return h.ring * params_.hosts_per_ring + h.index;
}

std::vector<atm::Hop> AbhnTopology::backbone_route(HostId src,
                                                   HostId dst) const {
  HETNET_CHECK(valid_host(src) && valid_host(dst), "invalid host id");
  // Section 4.1: hosts on the same ring reach each other directly over the
  // ring (case 1) — no backbone hops. Otherwise access i is the interface
  // device of ring i (the mesh builder attaches them in ring order).
  if (src.ring == dst.ring) return {};
  const auto hops = backbone_.route(src.ring, dst.ring);
  HETNET_CHECK(hops.has_value(), "mesh backbone must connect all accesses");
  return *hops;
}

TopologyParams paper_topology_params() {
  TopologyParams p;
  p.num_rings = 3;
  p.hosts_per_ring = 4;
  p.ring = fddi::RingParams{};            // TTRT 8 ms, 100 Mb/s
  p.link = atm::LinkParams{};             // 155 Mb/s
  p.cells = atm::CellFormat{};            // 48/53-byte cells
  return p;
}

}  // namespace hetnet::net
