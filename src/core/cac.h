// The connection admission control algorithm of Section 5.
//
// On a request for connection M_ij the controller:
//
//   1. computes H^max_avail on the source and destination rings from the
//      synchronous-bandwidth ledgers (eqs. 26–27);
//   2. rejects if the maximum-available allocation cannot satisfy every
//      deadline — the requesting connection's (eq. 25) and every existing
//      connection's (eq. 24); by Theorem 4 the feasible region is then
//      empty;
//   3. bisects along the line from (H^min_abs, H^min_abs) to
//      (H_S^max_avail, H_R^max_avail) for the minimum-needed allocation
//      (H_S^min_need, H_R^min_need) — the smallest point on the line where
//      all deadlines hold;
//   4. bisects between min_need and max_avail for the maximum-useful
//      allocation (H_S^max_need, H_R^max_need) — the smallest point whose
//      delays already equal those at max_avail (eqs. 31–33): beyond it,
//      extra bandwidth buys nothing;
//   5. allocates the β-interpolation (eqs. 35–36)
//          H = H^min_need + β (H^max_need − H^min_need)
//      and admits.
//
// β trades robustness of EXISTING admission decisions (large β: loose
// delays, immune to disturbance by future connections) against bandwidth
// left for FUTURE connections (small β). Section 6 finds β ∈ [0.4, 0.7]
// robust; bench/fig7_beta_sensitivity regenerates that curve.
//
// For the ablation study the controller also implements the two strawman
// policies the paper argues against (allocate-minimum and
// allocate-all-available).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>

#include "src/core/analyzer.h"
#include "src/fddi/ledger.h"
#include "src/net/connection.h"
#include "src/obs/metrics.h"

namespace hetnet::obs {
class ExplainSink;
}  // namespace hetnet::obs

namespace hetnet::core {

enum class AllocationRule {
  kBetaInterpolation,  // the paper's algorithm (eqs. 35–36)
  kMinimumNeeded,      // strawman: allocate H^min_need (β = 0 without slack)
  kMaximumAvailable,   // strawman: allocate everything available
};

struct CacConfig {
  // The β of eqs. (35)–(36), in [0, 1].
  double beta = 0.5;
  AllocationRule rule = AllocationRule::kBetaInterpolation;
  // H^min_abs: the smallest sensible synchronous allocation (FDDI frame
  // overheads make smaller grants useless; Section 5.2).
  Seconds h_min_abs = units::us(20);
  // Bisection resolution for steps 3 and 4.
  int bisection_iters = 12;
  // Relative tolerance for the delay-equality tests of eqs. (31)–(32).
  double equality_tolerance = 1e-3;
  // Incremental evaluation engine: cache active connections' send prefixes
  // across probes and requests, and memoize per-port FIFO bounds and
  // receive suffixes in an AnalysisSession (src/core/session.h). Decisions
  // and delay vectors are bit-identical to the cold path — disable only for
  // the cold reference in perf comparisons and soundness tests.
  bool incremental = true;
  // Tiered admission (effective only together with `incremental`; see
  // DESIGN.md §11). Tier A screens before paying for exact joint analyses,
  // with one certificate per direction: the optimistic floor screen — the
  // candidate's exact send-prefix delay, a floating-point lower bound on
  // its end-to-end bound — refutes feasibility (if even the prefix breaks
  // the deadline with margin, the exact evaluation cannot pass), and the
  // conservative kUp screen — a coarse joint analysis over flattened
  // admit-safe sources (src/traffic/flat.h) — confirms it (every bound
  // finite and clear of its deadline by screen_margin). A point neither
  // certificate resolves pays for an exact evaluation. The step-2
  // Theorem-4 test at max_avail fully determines admit vs reject, so a
  // certificate there resolves the DECISION at Tier A; the step-3
  // bisection probes are screened the same way point by point. Tier B
  // memoizes whole exact delay vectors by instance-tuple digest in the
  // AnalysisSession, so repeated probes against an unchanged active set
  // replay instead of re-analyzing. Decisions — admit/reject, allocations,
  // delay vectors — stay bit-identical to tiered = false
  // (tests/core/tiered_equivalence_test.cc and the tiered_equivalence fuzz
  // oracle pin this).
  bool tiered = true;
  // Tier-A screen shape: segment budget for the flattened sources, the
  // screen analyzer's (coarser) rasterization budget, and the flattening
  // horizon. Looser values make the screen cheaper but certify less.
  std::size_t screen_max_segments = 24;
  int screen_rasterize_max_points = 32;
  Seconds screen_horizon = units::ms(200);
  // Safety margin of the kUp screen's feasibility certificate, relative to
  // each connection's deadline: certify only when every screen bound
  // clears its deadline by this fraction. Every screen ingredient rounds
  // UP (kUp flattening, rasterize(), the MAC-output raster), so the screen
  // cannot flatter an infeasible point — except through one wrinkle: the
  // busy-period scan samples maximizer candidates from envelope
  // breakpoints, and the coarser screen raster can miss the true maximizer
  // (measured ~1e-3 relative undershoot on the bench topology). The margin
  // must exceed that scan deviation for decisions to stay bit-identical;
  // 0.1 leaves two orders of magnitude, audited by the tiered-equivalence
  // tests and fuzz oracle. The screen never certifies the REJECT
  // direction: kUp inflation legitimately overshoots the exact bound
  // without limit at small allocations, so a high screen reading proves
  // nothing — rejects come only from the proven floor certificate.
  double screen_margin = 0.1;
  // Escape hatch: disables the kUp screen's feasibility certificates
  // (conservative by construction, but margin-audited rather than proven)
  // while keeping the proven floor certificate and the Tier-B decision
  // memo.
  bool screen_upper_certificates = true;
  // Capacity of each AnalysisSession memo table (port bounds, receive
  // suffixes, Tier-B decisions, compiled flats) and of the candidate-prefix
  // compile cache. Eviction is generational (hot/cold halves; see
  // src/core/session.h): a long-lived controller sheds only its stale half
  // at a time, so admission latency has no trim-induced p99 cliff. Purely a
  // cost/memory knob — decisions are bit-identical at any capacity.
  // admissiond soaks shrink this to force eviction coverage.
  std::size_t session_max_entries = AnalysisSession::kDefaultMaxEntries;
  // analysis.threads > 1 additionally parallelizes each joint analysis
  // (wave-level port bounding, prefix/suffix fan-out) and, from 3 threads
  // up, speculatively evaluates the bisections' next candidate points
  // concurrently. Decisions stay bit-identical to analysis.threads == 1
  // (tests/core/parallel_equivalence_test.cc).
  AnalysisConfig analysis;
  // Decision-explain sink (src/obs/explain.h), not owned. When non-null,
  // request() emits one ExplainRecord per decision — per-server breakdown,
  // binding deadline/slack, allocation-line anchors, bisection log, reject
  // reason. Observation only: explain output never feeds back into the
  // decision, and with a null sink the explain path costs one pointer test.
  obs::ExplainSink* explain = nullptr;
};

enum class RejectReason {
  kNone,              // admitted
  kNoSyncBandwidth,   // H^max_avail below H^min_abs on some ring (eq. 26/27)
  kInfeasible,        // deadlines unsatisfiable even at max_avail (Theorem 4)
  // Refused by the signaling layer without consulting the CAC: the SETUP
  // named an id whose previous instance is still in the state table (e.g.
  // its RELEASE has not reached the controller yet).
  kSignalingCollision,
};

struct AdmissionDecision {
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  net::Allocation alloc;          // granted allocation (if admitted)
  Seconds worst_case_delay; // the new connection's bound at `alloc`
  // Diagnostics: the anchors of the allocation line.
  net::Allocation max_avail;
  net::Allocation min_need;
  net::Allocation max_need;
};

class AdmissionController {
 public:
  AdmissionController(const net::AbhnTopology* topology,
                      const CacConfig& config);

  // Runs the CAC for `spec`. On admission the allocation is reserved in the
  // ring ledgers and the connection joins the active set.
  AdmissionDecision request(const net::ConnectionSpec& spec);

  // Tears down an admitted connection and returns its bandwidth. Warm-cache
  // invalidation rides along: the released connection's send-prefix cache
  // entries are dropped, and when no remaining active connection shares its
  // source fingerprint, the compiled flat twin and candidate-prefix compile
  // cache entries keyed to that source are reclaimed too (cost only — no
  // cache here can ever serve a stale VALUE; keys are structural).
  void release(net::ConnectionId id);

  // Deterministic cross-request speculation for batched admission rounds
  // (src/server/admissiond.h). For each SETUP spec in the batch, evaluates
  // the step-2 Theorem-4 point (max_avail under the CURRENT ledgers) —
  // concurrently, each run against the shared session base with a private
  // overlay — then absorbs the overlays and feeds the Tier-B decision memo
  // in batch order. Purely a cache warmer: every stored vector is
  // bit-identical to what a later serial request() would compute at the
  // same state (the fingerprint contract), so decisions are unchanged for
  // any batch size and thread count; a warmed entry is USED by request()
  // only when the committed state still matches the digest it was computed
  // under. Specs that step 1 would reject from the ledgers alone, invalid
  // specs, and already-memoized points are skipped. Returns the number of
  // points actually evaluated.
  int prewarm(const std::vector<net::ConnectionSpec>& specs);

  // Checks eqs. (24)–(25) for a hypothetical allocation of `spec` against
  // the current active set (without admitting). Used by the
  // feasible-region benchmarks and tests.
  bool feasible_at(const net::ConnectionSpec& spec,
                   const net::Allocation& alloc) const;

  // The requesting connection's worst-case delay at a hypothetical
  // allocation (kUnbounded if none).
  Seconds delay_at(const net::ConnectionSpec& spec,
                   const net::Allocation& alloc) const;

  std::size_t active_count() const { return active_.size(); }
  const std::map<net::ConnectionId, net::ActiveConnection>& active() const {
    return active_;
  }
  const fddi::SyncBandwidthLedger& ledger(int ring) const;
  const net::AbhnTopology& topology() const { return *topology_; }
  const CacConfig& config() const { return config_; }
  const DelayAnalyzer& analyzer() const { return analyzer_; }

  // Memoization counters of the incremental engine (all zero when
  // config().incremental is false). Exposed for tests and benchmarks.
  const AnalysisSession::Stats& session_stats() const {
    return session_.stats();
  }

  // Total cache entries dropped by generation rotations across every
  // warm-state table (both analysis sessions and the candidate-prefix
  // compile cache). Cheap enough for per-request reads — admissiond keys
  // its post-eviction latency windows off deltas of this.
  std::uint64_t eviction_count() const {
    return session_.stats().evictions + screen_session_.stats().evictions +
           candidate_prefix_evictions_;
  }

  // This controller's metrics registry: push counters for requests,
  // decisions and speculative batching ("cac.*"), callback-backed views
  // over the session memo tallies ("cac.session.*"), and any histograms
  // callers record into (e.g. the microbench's request-latency samples).
  // Snapshots are serial reads — take them between requests.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Installs (or clears) the decision-explain sink after construction;
  // equivalent to constructing with CacConfig::explain set.
  void set_explain(obs::ExplainSink* sink) { config_.explain = sink; }

 private:
  struct Probe;  // see .cc: cached feasibility evaluation along the line

  // The active connection's send prefix, computed at most once per (id,
  // H_S) and reused across every probe of every later request. Erased on
  // release(); recomputed transparently if the allocation ever changed.
  const SendPrefix& cached_prefix(net::ConnectionId id,
                                  const net::ActiveConnection& conn) const;

  bool tiered_active() const { return config_.incremental && config_.tiered; }

  // The admit-safe flattened (Rounding::kUp) twin of a source envelope,
  // compiled once per source fingerprint through the session's FlatCache.
  EnvelopePtr flat_source(const EnvelopePtr& source) const;

  // screen_cached_prefix is cached_prefix's screen-tier twin: the active
  // connection's send prefix under the FLATTENED source through the screen
  // analyzer. Same lifecycle (erased on release, revalidated on H_S drift).
  const SendPrefix& screen_cached_prefix(
      net::ConnectionId id, const net::ActiveConnection& conn) const;

  // Cross-request compile cache for CANDIDATE send prefixes, exact and
  // screen tier both. send_prefix() depends only on (source envelope,
  // source segment's medium, intra-ring?, H_S) plus the analyzer's fixed
  // topology and config, so the key (screen?, source fingerprint, source
  // medium digest, intra, H_S bits) fully determines the result; caching it
  // keeps the at_uplink object — and therefore every downstream memo key
  // and the Tier-B digest — stable across requests.
  using CandidatePrefixKey =
      std::tuple<bool, std::uint64_t, std::uint64_t, bool, std::uint64_t>;
  const SendPrefix& compiled_candidate_prefix(bool screen,
                                              const net::ConnectionSpec& spec,
                                              Seconds h_s) const;

  const net::AbhnTopology* topology_;
  CacConfig config_;
  DelayAnalyzer analyzer_;
  std::map<net::ConnectionId, net::ActiveConnection> active_;
  std::vector<fddi::SyncBandwidthLedger> ledgers_;
  // Incremental-engine state. Mutable: probes run inside const entry points
  // (feasible_at, delay_at); the caches are semantically transparent. Like
  // cache_envelope, they mutate on use — the controller's API is
  // single-threaded. With config.analysis.threads > 1 the engine runs
  // concurrent work internally, but the session is only read concurrently
  // (speculative probes write private overlays, absorbed serially) and is
  // mutated exclusively from serial sections — see src/core/session.h.
  struct PrefixCacheEntry {
    Seconds h_s;
    SendPrefix prefix;
  };
  mutable std::map<net::ConnectionId, PrefixCacheEntry> prefix_cache_;
  mutable AnalysisSession session_;
  // Tier-A screen engine: a second DelayAnalyzer over the same topology
  // with a coarser AnalysisConfig (serial — screens run inside a request),
  // its own memo session, and the screen twins of the prefix caches. All
  // observation-grade state: nothing here ever changes a decision, only
  // which evaluations get skipped (src/core/cac.cc, feasibility screen).
  DelayAnalyzer screen_analyzer_;
  mutable AnalysisSession screen_session_;
  mutable std::map<net::ConnectionId, PrefixCacheEntry> screen_prefix_cache_;
  // Candidate-prefix compile cache: generational like the session tables,
  // so a long-lived controller's hot prefixes — and with them the decision
  // digests they anchor (the digest folds the prefix's at_uplink object
  // fingerprint) — survive evictions instead of being wiped wholesale.
  mutable SegmentedMap<CandidatePrefixKey, SendPrefix>
      candidate_prefix_cache_;
  mutable std::uint64_t candidate_prefix_evictions_ = 0;
  // Observability (src/obs). The registry owns the push counters below and
  // additionally exposes the session memo stats through registered
  // callbacks capturing `this` — the registry member therefore pins the
  // controller in place (MetricsRegistry is non-copyable, which makes the
  // controller non-copyable too). Counters are resolved once here so hot
  // paths never touch the registry map.
  obs::MetricsRegistry metrics_;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_rejected_no_bandwidth_ = nullptr;
  obs::Counter* m_rejected_infeasible_ = nullptr;
  obs::Counter* m_probe_evals_ = nullptr;
  obs::Counter* m_speculative_batches_ = nullptr;
  obs::Counter* m_speculative_points_ = nullptr;
  obs::Counter* m_prewarm_batches_ = nullptr;
  obs::Counter* m_prewarm_points_ = nullptr;
  obs::Counter* m_release_invalidations_ = nullptr;
  // Tier telemetry: per-probe screen outcomes ("cac.screen.*") and the
  // per-request decision-tier tally ("cac.tier.*" — exactly one increments
  // per request()).
  obs::Counter* m_screen_evals_ = nullptr;
  obs::Counter* m_screen_floor_certs_ = nullptr;
  obs::Counter* m_screen_upper_certs_ = nullptr;
  obs::Counter* m_tier_screen_admit_ = nullptr;
  obs::Counter* m_tier_screen_reject_ = nullptr;
  obs::Counter* m_tier_fallback_ = nullptr;
};

}  // namespace hetnet::core
