#include "src/core/region.h"

#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace hetnet::core {

RegionGrid sample_feasible_region(const AdmissionController& cac,
                                  const net::ConnectionSpec& spec,
                                  int steps_s, int steps_r) {
  HETNET_CHECK(steps_s > 0 && steps_r > 0, "grid must be non-empty");
  RegionGrid grid;
  grid.steps_s = steps_s;
  grid.steps_r = steps_r;
  grid.h_s_max = cac.ledger(spec.src.ring).available();
  grid.h_r_max = cac.ledger(spec.dst.ring).available();
  grid.samples.reserve(static_cast<std::size_t>(steps_s) *
                       static_cast<std::size_t>(steps_r));
  for (int j = 0; j < steps_r; ++j) {
    for (int i = 0; i < steps_s; ++i) {
      RegionSample s;
      s.h_s = grid.h_s_max * (i + 1) / steps_s;
      s.h_r = grid.h_r_max * (j + 1) / steps_r;
      s.delay = cac.delay_at(spec, {s.h_s, s.h_r});
      s.feasible = cac.feasible_at(spec, {s.h_s, s.h_r});
      grid.samples.push_back(s);
    }
  }
  return grid;
}

int count_convexity_violations(const RegionGrid& grid) {
  int violations = 0;
  const int ns = grid.steps_s;
  const int nr = grid.steps_r;
  for (int j1 = 0; j1 < nr; ++j1) {
    for (int i1 = 0; i1 < ns; ++i1) {
      if (!grid.at(i1, j1).feasible) continue;
      for (int j2 = j1; j2 < nr; ++j2) {
        for (int i2 = 0; i2 < ns; ++i2) {
          if (!grid.at(i2, j2).feasible) continue;
          if ((i1 + i2) % 2 != 0 || (j1 + j2) % 2 != 0) continue;
          if (!grid.at((i1 + i2) / 2, (j1 + j2) / 2).feasible) {
            ++violations;
          }
        }
      }
    }
  }
  return violations;
}

std::string render_region(const RegionGrid& grid) {
  std::ostringstream os;
  for (int j = grid.steps_r - 1; j >= 0; --j) {
    os << "H_R=" << grid.h_r_max * (j + 1) / grid.steps_r * 1e3 << "ms\t";
    for (int i = 0; i < grid.steps_s; ++i) {
      os << (grid.at(i, j).feasible ? '#' : '.');
    }
    os << "\n";
  }
  os << "\t(H_S rightward to " << grid.h_s_max * 1e3 << " ms)\n";
  return os.str();
}

}  // namespace hetnet::core
