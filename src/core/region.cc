#include "src/core/region.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"

namespace hetnet::core {

RegionGrid sample_feasible_region(const AdmissionController& cac,
                                  const net::ConnectionSpec& spec,
                                  int steps_s, int steps_r) {
  HETNET_CHECK(steps_s > 0 && steps_r > 0, "grid must be non-empty");
  RegionGrid grid;
  grid.steps_s = steps_s;
  grid.steps_r = steps_r;
  grid.h_s_max = cac.ledger(spec.src.ring).available();
  grid.h_r_max = cac.ledger(spec.dst.ring).available();
  grid.samples.reserve(static_cast<std::size_t>(steps_s) *
                       static_cast<std::size_t>(steps_r));
  for (int j = 0; j < steps_r; ++j) {
    for (int i = 0; i < steps_s; ++i) {
      RegionSample s;
      s.h_s = grid.h_s_max * (i + 1) / steps_s;
      s.h_r = grid.h_r_max * (j + 1) / steps_r;
      s.delay = cac.delay_at(spec, {s.h_s, s.h_r});
      s.feasible = cac.feasible_at(spec, {s.h_s, s.h_r});
      grid.samples.push_back(s);
    }
  }
  return grid;
}

int count_convexity_violations(const RegionGrid& grid) {
  // A violating midpoint is an INFEASIBLE grid point that is the exact
  // midpoint of two feasible ones. Instead of scanning all even pairs of
  // feasible points (quadratic in the grid size even on fully-convex
  // grids), enumerate candidate midpoints directly and stop at the first
  // witness pair — each midpoint is counted once, matching the documented
  // semantics, and a feasible midpoint costs nothing.
  int violations = 0;
  const int ns = grid.steps_s;
  const int nr = grid.steps_r;
  for (int jm = 0; jm < nr; ++jm) {
    for (int im = 0; im < ns; ++im) {
      if (grid.at(im, jm).feasible) continue;
      // Endpoint pairs are (im−di, jm−dj) and (im+di, jm+dj); scanning
      // di >= 0 covers every pair once ((di,dj) and (−di,−dj) name the
      // same one), and (0,0) is excluded — the midpoint itself is
      // infeasible.
      const int di_max = std::min(im, ns - 1 - im);
      const int dj_max = std::min(jm, nr - 1 - jm);
      bool witnessed = false;
      for (int di = 0; di <= di_max && !witnessed; ++di) {
        for (int dj = di == 0 ? 1 : -dj_max; dj <= dj_max && !witnessed;
             ++dj) {
          witnessed = grid.at(im - di, jm - dj).feasible &&
                      grid.at(im + di, jm + dj).feasible;
        }
      }
      if (witnessed) ++violations;
    }
  }
  return violations;
}

std::string render_region(const RegionGrid& grid) {
  std::ostringstream os;
  for (int j = grid.steps_r - 1; j >= 0; --j) {
    os << "H_R=" << grid.h_r_max * (j + 1) / grid.steps_r * 1e3 << "ms\t";
    for (int i = 0; i < grid.steps_s; ++i) {
      os << (grid.at(i, j).feasible ? '#' : '.');
    }
    os << "\n";
  }
  os << "\t(H_S rightward to " << grid.h_s_max * 1e3 << " ms)\n";
  return os.str();
}

}  // namespace hetnet::core
