#include "src/core/cac.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/obs/explain.h"
#include "src/obs/names.h"
#include "src/obs/span.h"
#include "src/obs/stopwatch.h"
#include "src/traffic/fingerprint.h"
#include "src/traffic/flat.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace hetnet::core {
namespace {

bool all_deadlines_met(const std::vector<ConnectionInstance>& set,
                       const std::vector<Seconds>& delays) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (!isfinite(delays[i])) return false;
    if (!approx_le(delays[i], set[i].spec.deadline)) return false;
  }
  return true;
}

// The next `depth` levels of candidate bisection midpoints below the bracket
// [lo, hi]: both branches of every level, 2^depth − 1 points. Uses the exact
// arithmetic of the serial loop (0.5 * (lo + hi)), so whichever branch the
// consuming bisection actually takes, its next `depth` midpoints are
// bit-identical members of this set.
void midpoint_subtree(double lo, double hi, int depth,
                      std::vector<double>* out) {
  if (depth <= 0) return;
  const double mid = 0.5 * (lo + hi);
  out->push_back(mid);
  midpoint_subtree(lo, mid, depth - 1, out);
  midpoint_subtree(mid, hi, depth - 1, out);
}

// The Tier-A screen analyzer's configuration: the exact engine's settings
// with a coarser rasterization budget — the screen's entire cost advantage
// (fewer staircase points in every busy-period scan), bought by letting
// the screen's bounds deviate a little in EITHER direction, which is why
// every screen verdict carries CacConfig::screen_margin — and serial
// execution (screens run inside a request; the exact engine owns the
// worker pool).
AnalysisConfig screen_analysis_config(const CacConfig& config) {
  AnalysisConfig c = config.analysis;
  c.rasterize_max_points =
      std::min(c.rasterize_max_points, config.screen_rasterize_max_points);
  c.threads = 1;
  return c;
}

// Margin for the Tier-A reject certificate: a lower bound `lower` on the
// candidate's delay refutes approx_le(d, deadline) for EVERY d >= lower
// only if it clears the deadline by more than the kEps tolerance envelope
// (src/util/units.h). 1e-8 relative+absolute covers kEps = 1e-9 for any
// second-scale delay with an order of magnitude to spare.
inline constexpr double kFloorCertMargin = 1e-8;

}  // namespace

// One admission request's evaluation context: the active set plus the
// requesting connection in the last slot, with the active connections'
// send-side prefixes computed once (they do not depend on the candidate
// allocation). Under config.incremental the active prefixes come from the
// controller's cross-request cache and every probe runs against the
// controller's AnalysisSession, so per-probe cost scales with what the
// candidate's allocation actually changes.
struct AdmissionController::Probe {
  Probe(const AdmissionController& cac, const net::ConnectionSpec& spec)
      : analyzer(&cac.analyzer_),
        session(cac.config_.incremental ? &cac.session_ : nullptr),
        media_digest(cac.topology_->media_digest()) {
    set.reserve(cac.active_.size() + 1);
    prefixes.reserve(cac.active_.size() + 1);
    for (const auto& [id, conn] : cac.active_) {
      set.push_back({conn.spec, conn.alloc});
      prefixes.push_back(session != nullptr
                             ? cac.cached_prefix(id, conn)
                             : cac.analyzer_.send_prefix(conn.spec,
                                                         conn.alloc.h_s));
    }
    set.push_back({spec, {}});
    prefixes.emplace_back();

    if (!cac.tiered_active()) return;
    // Tiered engine: the screen's twin of the instance set, with every
    // source replaced by its admit-safe flattened (Rounding::kUp) version.
    // Allocations, routes and deadlines are shared with the exact set, so
    // a screen delay vector lines up index-for-index with the exact one.
    owner = &cac;
    screen_analyzer = &cac.screen_analyzer_;
    screen_session = &cac.screen_session_;
    upper_certificates = cac.config_.screen_upper_certificates;
    margin = cac.config_.screen_margin;
    screen_set.reserve(set.size());
    screen_prefixes.reserve(set.size());
    for (const auto& [id, conn] : cac.active_) {
      net::ConnectionSpec flat_spec = conn.spec;
      flat_spec.source = cac.flat_source(conn.spec.source);
      screen_set.push_back({std::move(flat_spec), conn.alloc});
      screen_prefixes.push_back(cac.screen_cached_prefix(id, conn));
    }
    net::ConnectionSpec flat_cand = spec;
    flat_cand.source = cac.flat_source(spec.source);
    screen_set.push_back({std::move(flat_cand), {}});
    screen_prefixes.emplace_back();
  }

  // Evaluates every connection's bound with the candidate allocation in the
  // last slot. Points pre-evaluated by prefetch() are served from the
  // speculation cache — bit-identical to re-running them here, since eval is
  // a pure function of the allocation (the session memo only changes cost,
  // never values).
  std::vector<Seconds> eval(const net::Allocation& alloc) {
    ++evals;
    if (const auto it = speculated.find(point_key(alloc));
        it != speculated.end()) {
      return it->second;
    }
    set.back().alloc = alloc;
    prefixes.back() = candidate_prefix(alloc.h_s);
    // Tier B: whole-run memo. The digest covers exactly the inputs run()
    // depends on (see decision_digest), so a hit replays the bit-identical
    // delay vector the analysis below would have produced.
    const std::uint64_t digest = owner != nullptr ? decision_digest() : 0;
    if (owner != nullptr) {
      if (const std::vector<Seconds>* hit = session->decision_lookup(digest)) {
        return *hit;
      }
    }
    const std::int64_t t0 = timed ? obs::monotonic_ns() : 0;
    std::vector<Seconds> fresh;
    {
      HETNET_OBS_SPAN("cac.probe_eval", "cac");
      fresh = analyzer->complete(set, prefixes, session);
    }
    if (timed) exact_ns += obs::monotonic_ns() - t0;
    if (owner != nullptr) session->decision_store(digest, fresh);
    return fresh;
  }

  bool has_eval(const net::Allocation& alloc) const {
    return speculated.find(point_key(alloc)) != speculated.end();
  }

  // True when eval(alloc) would be served without a fresh joint analysis —
  // from the per-request speculation cache or the session's decision memo.
  // Orders the tiers: an available exact vector always beats screening.
  bool has_cheap_exact(const net::Allocation& alloc) {
    if (has_eval(alloc)) return true;
    if (owner == nullptr) return false;
    set.back().alloc = alloc;
    prefixes.back() = candidate_prefix(alloc.h_s);
    return session->decision_contains(decision_digest());
  }

  // Tier-A reject certificate. The candidate's exact send-prefix delay is a
  // floating-point-exact lower bound on its end-to-end bound: the analysis
  // only ever ADDS nonnegative stage delays onto it, and fl(a + b) >= a for
  // b >= 0 under round-to-nearest. So if even the prefix violates the
  // candidate's deadline with margin — enough that approx_le cannot forgive
  // any delay at or above it — the exact evaluation is guaranteed to report
  // infeasible. An unusable prefix (finite == false) certifies the same
  // way: the candidate's bound is +infinity.
  bool floor_infeasible(const net::Allocation& alloc) {
    const SendPrefix cand = candidate_prefix(alloc.h_s);
    if (!cand.finite) return true;
    const double lower = cand.delay.value();
    const double deadline = set.back().spec.deadline.value();
    return lower * (1.0 - kFloorCertMargin) > deadline + kFloorCertMargin;
  }

  // Tier-A admit screen: run the coarse pipeline — flattened kUp sources
  // through the screen analyzer — and accept only when every connection's
  // estimated bound is finite and clears its deadline by the configured
  // margin. The screen certifies ONE direction only. Its ingredients are
  // all conservative (kUp flattening inflates arrivals, rasterize() and
  // the MAC-output raster round up), so a clearance with margin to spare
  // is trustworthy; the margin absorbs the one non-monotone wrinkle — the
  // busy-period scan samples candidate points from envelope breakpoints,
  // and a coarser raster can miss the maximizer (measured ~1e-3 relative
  // undershoot; the default margin of 0.1 leaves two orders of headroom).
  // A HIGH screen reading certifies nothing: the same kUp inflation that
  // makes clearance safe can legitimately overshoot the exact bound by
  // far more than any fixed margin (at small allocations the extra burst
  // stretches busy periods without limit), so "screen says infeasible"
  // always falls through to the floor certificate or the exact engine.
  // Audited by the tiered-equivalence tests and fuzz oracle, with
  // CacConfig::screen_upper_certificates as the kill switch.
  bool screen_clearly_feasible(const net::Allocation& alloc) {
    ++screen_evals;
    const std::int64_t t0 = timed ? obs::monotonic_ns() : 0;
    std::vector<Seconds> bounds;
    {
      HETNET_OBS_SPAN("cac.screen_eval", "cac");
      screen_set.back().alloc = alloc;
      screen_prefixes.back() =
          owner->compiled_candidate_prefix(true, screen_set.back().spec,
                                           alloc.h_s);
      bounds =
          screen_analyzer->complete(screen_set, screen_prefixes,
                                    screen_session);
    }
    if (timed) screen_ns += obs::monotonic_ns() - t0;
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (!isfinite(bounds[i])) return false;
      const double deadline = set[i].spec.deadline.value();
      if (!(bounds[i].value() <= deadline * (1.0 - margin))) return false;
    }
    return true;
  }

  // The digest of everything DelayAnalyzer::run() reads from this probe:
  // the topology's resolved hop-sequence digest, then per instance
  // (candidate last, matching set order) the route endpoints, H_R, and the
  // send prefix's (finite, delay bits, at_uplink fingerprint). spec.id and
  // deadlines are deliberately absent — run() never reads them (deadlines
  // apply outside, in all_deadlines_met). Must be called with
  // set.back().alloc and prefixes.back() already holding the probed point.
  std::uint64_t decision_digest() const {
    std::uint64_t d = fp::combine(fp::mix(0xDEC151ull), media_digest);
    d = fp::combine(d, set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      const net::ConnectionSpec& s = set[i].spec;
      const SendPrefix& p = prefixes[i];
      d = fp::combine(d, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s.src.ring)));
      d = fp::combine(d, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s.src.index)));
      d = fp::combine(d, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s.dst.ring)));
      d = fp::combine(d, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(s.dst.index)));
      d = fp::combine(d, fp::of_double(set[i].alloc.h_r.value()));
      d = fp::combine(d, p.finite ? 1 : 0);
      d = fp::combine(d, fp::of_double(p.delay.value()));
      d = fp::combine(
          d, p.at_uplink != nullptr ? p.at_uplink->fingerprint() : 0);
    }
    return d;
  }

  // Speculative probe batching: evaluates every not-yet-cached point of the
  // batch concurrently. Each speculative run gets private copies of the
  // instance set and prefixes plus a private session overlay; the shared
  // base session is read-only during the batch and absorbs the overlays in
  // batch order afterwards (src/core/session.h). The candidate prefixes are
  // materialized serially up front, so the concurrent runs see the same
  // SendPrefix objects — and therefore the same memo keys — as the serial
  // engine would.
  void prefetch(const std::vector<net::Allocation>& allocs) {
    std::vector<net::Allocation> todo;
    std::vector<SendPrefix> todo_prefix;
    for (const net::Allocation& a : allocs) {
      if (has_eval(a)) continue;
      todo.push_back(a);
      todo_prefix.push_back(candidate_prefix(a.h_s));
    }
    if (todo.empty()) return;
    ++speculative_batches;
    speculative_points += int(todo.size());
    HETNET_OBS_SPAN_NAMED(span, "cac.speculative_batch", "cac");
    span.arg("points", std::int64_t(todo.size()));
    std::vector<AnalysisSession> overlays(todo.size());
    std::vector<std::vector<Seconds>> results(todo.size());
    util::parallel_for(
        todo.size(), analyzer->config().threads, [&](std::size_t k) {
          std::vector<ConnectionInstance> spec_set = set;
          std::vector<SendPrefix> spec_prefixes = prefixes;
          spec_set.back().alloc = todo[k];
          spec_prefixes.back() = todo_prefix[k];
          results[k] = session != nullptr
                           ? analyzer->complete_speculative(
                                 spec_set, spec_prefixes, *session,
                                 overlays[k])
                           : analyzer->complete(spec_set, spec_prefixes,
                                                nullptr);
        });
    for (std::size_t k = 0; k < todo.size(); ++k) {
      if (session != nullptr) session->absorb(std::move(overlays[k]));
      if (owner != nullptr) {
        // Feed the decision memo too, so a later request probing the same
        // instance tuple replays the speculated vector without any analysis.
        set.back().alloc = todo[k];
        prefixes.back() = todo_prefix[k];
        session->decision_store(decision_digest(), results[k]);
      }
      speculated.emplace(point_key(todo[k]), std::move(results[k]));
    }
  }

  bool feasible(const net::Allocation& alloc) {
    return all_deadlines_met(set, eval(alloc));
  }

  // The candidate's prefix for a given H_S, memoized within this request:
  // bisection revisits anchor points (max_avail, the saturated point), and
  // returning the SAME SendPrefix object keeps the downstream envelope
  // fingerprints — and therefore the session's port memo keys — stable.
  SendPrefix candidate_prefix(Seconds h_s) {
    if (session == nullptr) {
      return analyzer->send_prefix(set.back().spec, h_s);
    }
    if (owner != nullptr) {
      // Tiered mode hoists the memo to the controller: the decision digest
      // folds the prefix's at_uplink fingerprint, and only a CROSS-request
      // cache returns the same uplink envelope objects (hence fingerprints)
      // when a later request probes the same (source, route, H_S) point.
      return owner->compiled_candidate_prefix(false, set.back().spec, h_s);
    }
    const auto [it, inserted] =
        candidate_prefixes.try_emplace(fp::of_double(h_s.value()));
    if (inserted) {
      it->second = analyzer->send_prefix(set.back().spec, h_s);
    }
    return it->second;
  }

  // Exact point identity via the raw double bits — no tolerance folding, so
  // the only way to hit the cache is to ask for the bit-identical (λ ↦
  // allocation) point the subtree generator produced.
  using PointKey = std::pair<std::uint64_t, std::uint64_t>;
  static PointKey point_key(const net::Allocation& a) {
    return {fp::of_double(a.h_s.value()), fp::of_double(a.h_r.value())};
  }

  const DelayAnalyzer* analyzer = nullptr;
  AnalysisSession* session = nullptr;
  // Tiered engine handles (all null/empty unless the owning controller has
  // tiering active — Probe methods treat `owner == nullptr` as plain mode).
  const AdmissionController* owner = nullptr;
  const DelayAnalyzer* screen_analyzer = nullptr;
  AnalysisSession* screen_session = nullptr;
  bool upper_certificates = false;
  double margin = 0.1;
  // Digest of the topology's resolved hop sequence (every access and
  // backbone medium's configuration). Folded into decision_digest() so a
  // controller over a different media mix can never replay another's memo.
  std::uint64_t media_digest = 0;
  // Per-tier wall-clock attribution, captured only when a decision-explain
  // sink is installed (clock reads are observation-only; see
  // src/obs/stopwatch.h).
  bool timed = false;
  // Observation-only tallies, flushed into the controller's metrics
  // registry by whichever entry point owns the probe.
  int evals = 0;
  int screen_evals = 0;
  int speculative_batches = 0;
  int speculative_points = 0;
  std::int64_t screen_ns = 0;
  std::int64_t exact_ns = 0;
  std::vector<ConnectionInstance> set;
  std::vector<SendPrefix> prefixes;
  std::vector<ConnectionInstance> screen_set;
  std::vector<SendPrefix> screen_prefixes;
  std::map<std::uint64_t, SendPrefix> candidate_prefixes;
  // Delay vectors from speculative prefetch() batches, keyed by allocation
  // point. Per-request (lives and dies with the Probe).
  std::map<PointKey, std::vector<Seconds>> speculated;
};

AdmissionController::AdmissionController(const net::AbhnTopology* topology,
                                         const CacConfig& config)
    : topology_(topology),
      config_(config),
      analyzer_(topology, config.analysis),
      screen_analyzer_(topology, screen_analysis_config(config)) {
  HETNET_CHECK(topology_ != nullptr, "null topology");
  HETNET_CHECK(config_.beta >= 0.0 && config_.beta <= 1.0,
               "β must lie in [0, 1]");
  HETNET_CHECK(config_.h_min_abs > 0, "H^min_abs must be positive");
  HETNET_CHECK(config_.bisection_iters > 0, "need at least one bisection");
  for (int r = 0; r < topology_->num_rings(); ++r) {
    // Each ring's ledger constrains its own medium's cycle (Σ H + Δ <=
    // cycle time): TTRT for a timed-token segment, the schedule cycle for a
    // TDMA segment.
    ledgers_.emplace_back(topology_->access_medium(r).cycle());
  }
  // Bound every memo table to the configured capacity (generational
  // eviction; see src/core/session.h). set_capacity validates the floor.
  session_.set_capacity(config_.session_max_entries);
  screen_session_.set_capacity(config_.session_max_entries);

  // Metrics surface: push counters resolved once (hot paths use the
  // pointers), plus callback-backed views over the session memo tallies so
  // the registry is the single read surface without double bookkeeping —
  // AnalysisSession::Stats stays the owner (tests rely on its per-session
  // semantics).
  m_requests_ = &metrics_.counter(obs::names::kCacRequests);
  m_admitted_ = &metrics_.counter(obs::names::kCacAdmitted);
  m_rejected_no_bandwidth_ =
      &metrics_.counter(obs::names::kCacRejectedNoSyncBandwidth);
  m_rejected_infeasible_ =
      &metrics_.counter(obs::names::kCacRejectedInfeasible);
  m_probe_evals_ = &metrics_.counter(obs::names::kCacProbeEvals);
  m_speculative_batches_ =
      &metrics_.counter(obs::names::kCacSpeculativeBatches);
  m_speculative_points_ = &metrics_.counter(obs::names::kCacSpeculativePoints);
  m_prewarm_batches_ = &metrics_.counter(obs::names::kCacPrewarmBatches);
  m_prewarm_points_ = &metrics_.counter(obs::names::kCacPrewarmPoints);
  m_release_invalidations_ =
      &metrics_.counter(obs::names::kCacReleaseInvalidations);
  m_screen_evals_ = &metrics_.counter(obs::names::kCacScreenEvals);
  m_screen_floor_certs_ = &metrics_.counter(obs::names::kCacScreenFloorCerts);
  m_screen_upper_certs_ = &metrics_.counter(obs::names::kCacScreenUpperCerts);
  m_tier_screen_admit_ = &metrics_.counter(obs::names::kCacTierScreenAdmit);
  m_tier_screen_reject_ = &metrics_.counter(obs::names::kCacTierScreenReject);
  m_tier_fallback_ = &metrics_.counter(obs::names::kCacTierFallback);
  metrics_.register_callback(obs::names::kCacSessionPortEvals, [this] {
    return session_.stats().port_evals;
  });
  metrics_.register_callback(obs::names::kCacSessionPortHits, [this] {
    return session_.stats().port_hits;
  });
  metrics_.register_callback(obs::names::kCacSessionSuffixEvals, [this] {
    return session_.stats().suffix_evals;
  });
  metrics_.register_callback(obs::names::kCacSessionSuffixHits, [this] {
    return session_.stats().suffix_hits;
  });
  metrics_.register_callback(obs::names::kCacSessionDecisionHits, [this] {
    return session_.stats().decision_hits;
  });
  metrics_.register_callback(obs::names::kCacSessionDecisionEvals, [this] {
    return session_.stats().decision_evals;
  });
  metrics_.register_callback(obs::names::kCacSessionFlatHits, [this] {
    return session_.stats().flat_hits;
  });
  metrics_.register_callback(obs::names::kCacSessionFlatCompiles, [this] {
    return session_.stats().flat_compiles;
  });
  metrics_.register_callback(obs::names::kCacSessionEvictions, [this] {
    return session_.stats().evictions + screen_session_.stats().evictions;
  });
  metrics_.register_callback(obs::names::kCacSessionInvalidations, [this] {
    return session_.stats().invalidations;
  });
  metrics_.register_callback(obs::names::kCacSessionEntries, [this] {
    return std::uint64_t(session_.size() + screen_session_.size());
  });
  metrics_.register_callback(obs::names::kCacPrefixEvictions,
                             [this] { return candidate_prefix_evictions_; });
  metrics_.register_callback(obs::names::kCacActiveConnections, [this] {
    return std::uint64_t(active_.size());
  });
}

const fddi::SyncBandwidthLedger& AdmissionController::ledger(int ring) const {
  HETNET_CHECK(ring >= 0 && ring < topology_->num_rings(),
               "ring index out of range");
  return ledgers_[static_cast<std::size_t>(ring)];
}

AdmissionDecision AdmissionController::request(
    const net::ConnectionSpec& spec) {
  HETNET_CHECK(topology_->valid_host(spec.src) &&
                   topology_->valid_host(spec.dst),
               "invalid endpoints");
  HETNET_CHECK(spec.source != nullptr, "connection has no source envelope");
  HETNET_CHECK(spec.deadline > 0, "deadline must be positive");
  HETNET_CHECK(!active_.contains(spec.id), "connection id already active");

  HETNET_OBS_SPAN_NAMED(request_span, "cac.request", "cac");
  request_span.arg("conn", std::int64_t(spec.id))
      .arg("active", std::int64_t(active_.size()));
  m_requests_->increment();

  // Decision-explain record, built only when a sink is installed. Every
  // write below is guarded by `sink`, and nothing read back from `rec`
  // influences the decision — explain is observation-only.
  obs::ExplainSink* const sink = config_.explain;
  obs::ExplainRecord rec;
  if (sink != nullptr) {
    rec.conn = spec.id;
    rec.src = spec.src;
    rec.dst = spec.dst;
    rec.deadline = spec.deadline;
    rec.bound = kUnbounded;
    rec.slack = spec.deadline - kUnbounded;
  }

  AdmissionDecision decision;
  // Intra-ring connections (Section 4.1 case 1) need no receive-side
  // allocation: the ring delivers directly, so the search is 1-D in H_S.
  const bool intra_ring = spec.src.ring == spec.dst.ring;

  // --- Step 1: the available synchronous bandwidth (eqs. 26–27). ---
  const Seconds h_s_max =
      ledgers_[static_cast<std::size_t>(spec.src.ring)].available();
  const Seconds h_r_max =
      intra_ring
          ? Seconds{}
          : ledgers_[static_cast<std::size_t>(spec.dst.ring)].available();
  decision.max_avail = {h_s_max, h_r_max};
  if (h_s_max < config_.h_min_abs ||
      (!intra_ring && h_r_max < config_.h_min_abs)) {
    decision.reason = RejectReason::kNoSyncBandwidth;
    m_rejected_no_bandwidth_->increment();
    // Ledger arithmetic, not analysis — no tier ever ran. Counted as
    // fallback so the three tier counters partition cac.requests.
    m_tier_fallback_->increment();
    if (sink != nullptr) {
      rec.reason = "no_sync_bandwidth";
      rec.decision_tier = "exact";
      rec.max_avail = decision.max_avail;
      sink->add(std::move(rec));
    }
    return decision;
  }

  Probe probe(*this, spec);
  probe.timed = sink != nullptr;
  const net::Allocation max_avail{h_s_max, h_r_max};
  const bool screening = tiered_active();
  // Tier bookkeeping for this request, flushed into the metrics registry
  // at the end: how many probes each certificate family resolved.
  int floor_certs = 0;
  int upper_certs = 0;

  // Explain helpers: the connection whose deadline has the least slack at
  // the evaluated point, and the requester's per-server chain breakdown
  // (memo-free recompute; pure observation, never fed back).
  const auto fill_binding = [&](const std::vector<Seconds>& delays) {
    std::size_t arg = 0;
    Seconds best = Seconds::infinity();
    for (std::size_t i = 0; i < delays.size(); ++i) {
      const Seconds slack = probe.set[i].spec.deadline - delays[i];
      if (i == 0 || slack < best) {
        best = slack;
        arg = i;
      }
    }
    rec.binding_conn = probe.set[arg].spec.id;
    rec.binding_slack = best;
  };
  const auto fill_stages = [&](const net::Allocation& at) {
    probe.set.back().alloc = at;
    const std::optional<ChainAnalysis> chain =
        analyzer_.breakdown(probe.set, probe.set.size() - 1);
    if (!chain.has_value()) return;
    rec.stages.reserve(chain->stages.size());
    for (const ChainStage& stage : chain->stages) {
      rec.stages.push_back({stage.server_name,
                            stage.analysis.worst_case_delay,
                            stage.analysis.buffer_required});
      if (rec.binding_server.empty() ||
          stage.analysis.worst_case_delay > rec.binding_stage_delay) {
        rec.binding_server = stage.server_name;
        rec.binding_stage_delay = stage.analysis.worst_case_delay;
      }
    }
  };
  const auto flush_probe_metrics = [&] {
    m_probe_evals_->add(std::uint64_t(probe.evals));
    m_screen_evals_->add(std::uint64_t(probe.screen_evals));
    m_screen_floor_certs_->add(std::uint64_t(floor_certs));
    m_screen_upper_certs_->add(std::uint64_t(upper_certs));
    m_speculative_batches_->add(std::uint64_t(probe.speculative_batches));
    m_speculative_points_->add(std::uint64_t(probe.speculative_points));
  };

  // --- Step 2: Theorem 4 — if max_avail fails, the region is empty. ---
  // Theorem 4 at max_avail fully determines admit vs reject (steps 3–5
  // only pick the allocation), so this is where Tier A screens the
  // DECISION. Resolution order: the proven floor certificate (even the
  // candidate's send-prefix lower bound — an optimistic screen of the full
  // pipeline — breaks its deadline → reject with ZERO exact evaluations),
  // then the conservative kUp screen (clears every deadline with margin →
  // the request is a screen_admit, with exact evaluation left to compute
  // the allocation VALUES). Anything in between falls through to the exact
  // test. The screen is skipped when the exact vector is already memoized —
  // a Tier-B replay is cheaper than any screen. With an explain sink
  // installed the exact evaluation always runs (observation only — the
  // record carries real bound/slack/stage data), doubling as a live audit
  // of whichever certificate fired.
  bool screen_reject_cert = false;
  bool screen_admit_cert = false;
  if (screening && !probe.has_cheap_exact(max_avail)) {
    if (probe.floor_infeasible(max_avail)) {
      screen_reject_cert = true;
      ++floor_certs;
    } else if (config_.screen_upper_certificates &&
               probe.screen_clearly_feasible(max_avail)) {
      screen_admit_cert = true;
      ++upper_certs;
    }
  }
  if (screen_reject_cert && sink == nullptr) {
    decision.reason = RejectReason::kInfeasible;
    m_rejected_infeasible_->increment();
    m_tier_screen_reject_->increment();
    flush_probe_metrics();
    return decision;
  }
  const std::vector<Seconds> ref_delays = probe.eval(max_avail);
  if (!all_deadlines_met(probe.set, ref_delays)) {
    HETNET_CHECK(!screen_admit_cert,
                 "Tier-A screen admit certificate contradicted by the exact "
                 "Theorem-4 evaluation");
    decision.reason = RejectReason::kInfeasible;
    m_rejected_infeasible_->increment();
    (screen_reject_cert ? m_tier_screen_reject_ : m_tier_fallback_)
        ->increment();
    flush_probe_metrics();
    if (sink != nullptr) {
      rec.reason = "infeasible";
      rec.decision_tier = screen_reject_cert ? "screen_reject" : "exact";
      rec.screen_ns = probe.screen_ns;
      rec.exact_ns = probe.exact_ns;
      rec.max_avail = decision.max_avail;
      rec.bound = ref_delays.back();
      rec.slack = spec.deadline - rec.bound;
      rec.probe_evals = probe.evals;
      fill_binding(ref_delays);
      fill_stages(max_avail);
      sink->add(std::move(rec));
    }
    return decision;
  }
  HETNET_CHECK(!screen_reject_cert,
               "Tier-A reject certificate contradicted by the exact "
               "Theorem-4 evaluation");

  // The allocation line from (H^min_abs, H^min_abs) to max_avail (its H_R
  // coordinate collapses to zero for an intra-ring request).
  const auto lerp = [&](double lambda) -> net::Allocation {
    net::Allocation a;
    a.h_s = config_.h_min_abs + lambda * (h_s_max - config_.h_min_abs);
    a.h_r = intra_ring
                ? Seconds{}
                : config_.h_min_abs + lambda * (h_r_max - config_.h_min_abs);
    return a;
  };

  // Speculative probe batching (threads ≥ 3): ahead of the next `depth`
  // bisection iterations, evaluate the full binary subtree of candidate
  // midpoints (2^depth − 1 points ≤ threads) concurrently. The bisection
  // then consumes its actual path through the subtree from the cache —
  // trajectory and decision are bit-identical to the serial loop because
  // eval is a pure function of the allocation. Depth 1 is pointless (one
  // point on one worker IS the serial step), hence the ≥ 2 cutoff.
  const int spec_depth = [&] {
    int d = 0;
    while (((1 << (d + 1)) - 1) <= config_.analysis.threads) ++d;
    return d;
  }();
  const auto maybe_prefetch = [&](double lo, double hi, int remaining) {
    const int depth = std::min(spec_depth, remaining);
    if (depth < 2) return;
    if (probe.has_eval(lerp(0.5 * (lo + hi)))) return;
    std::vector<double> lambdas;
    midpoint_subtree(lo, hi, depth, &lambdas);
    std::vector<net::Allocation> points;
    points.reserve(lambdas.size());
    for (const double l : lambdas) points.push_back(lerp(l));
    probe.prefetch(points);
  };

  // Step-3 feasibility with Tier-A screening in front. Resolution order per
  // point: an already-available exact vector (speculation cache or decision
  // memo) wins outright — replaying it is cheaper than any screen. Otherwise
  // the optimistic floor certificate can refute feasibility and the
  // conservative kUp screen can confirm it; each certificate covers ONLY
  // its own direction (see floor_infeasible / screen_clearly_feasible), so
  // a point neither resolves — bounds inside the screen's margin band,
  // exactly the bisection's convergence zone — pays for an exact
  // evaluation. The certificates agree with the exact predicate (floor:
  // proven; screen: conservative construction plus margin over the
  // measured scan deviation, audited by the tiered-equivalence tests and
  // fuzz oracle), so the bisection TRAJECTORY — hence every decision
  // output — is bit-identical to the untiered path. Screening is confined
  // to step 3 deliberately: steps 4–5 need the exact delay VALUES, which
  // no certificate can supply.
  const auto feasible_screened = [&](const net::Allocation& alloc) {
    if (screening && !probe.has_cheap_exact(alloc)) {
      if (probe.floor_infeasible(alloc)) {
        ++floor_certs;
        return false;
      }
      if (probe.upper_certificates && probe.screen_clearly_feasible(alloc)) {
        ++upper_certs;
        return true;
      }
    }
    return probe.feasible(alloc);
  };

  // --- Step 3: bisect for (H_S^min_need, H_R^min_need). ---
  double lambda_min = 0.0;
  if (!feasible_screened(lerp(0.0))) {
    double lo = 0.0;  // infeasible
    double hi = 1.0;  // feasible (step 2)
    for (int i = 0; i < config_.bisection_iters; ++i) {
      maybe_prefetch(lo, hi, config_.bisection_iters - i);
      const double mid = 0.5 * (lo + hi);
      const bool ok = feasible_screened(lerp(mid));
      if (sink != nullptr) {
        rec.bisection.push_back(
            {obs::ExplainBisectionStep::Phase::kMinNeed, i, mid, ok});
      }
      if (ok) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    lambda_min = hi;  // the feasible side of the boundary bracket
  }
  decision.min_need = lerp(lambda_min);

  // --- Step 4: bisect for (H_S^max_need, H_R^max_need) via eqs. (31)–(33):
  // the smallest point on the line whose delay vector already equals the
  // delay vector at max_avail.
  const auto delays_saturated = [&](const net::Allocation& alloc) {
    const std::vector<Seconds> d = probe.eval(alloc);
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (!isfinite(d[i])) return false;
      const Seconds scale =
          std::max({abs(ref_delays[i]), abs(d[i]), Seconds{1e-9}});
      if (abs(d[i] - ref_delays[i]) >
          config_.equality_tolerance * scale) {
        return false;
      }
    }
    return true;
  };
  double lambda_max = lambda_min;
  if (!delays_saturated(lerp(lambda_min))) {
    double lo = lambda_min;  // not yet saturated
    double hi = 1.0;         // saturated by definition (it IS the reference)
    for (int i = 0; i < config_.bisection_iters; ++i) {
      maybe_prefetch(lo, hi, config_.bisection_iters - i);
      const double mid = 0.5 * (lo + hi);
      const bool saturated = delays_saturated(lerp(mid));
      if (sink != nullptr) {
        rec.bisection.push_back(
            {obs::ExplainBisectionStep::Phase::kMaxNeed, i, mid, saturated});
      }
      if (saturated) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    lambda_max = hi;
  }
  decision.max_need = lerp(lambda_max);

  // --- Step 5: allocate and admit. ---
  double lambda_alloc = lambda_min;
  switch (config_.rule) {
    case AllocationRule::kBetaInterpolation:
      lambda_alloc = lambda_min + config_.beta * (lambda_max - lambda_min);
      break;
    case AllocationRule::kMinimumNeeded:
      lambda_alloc = lambda_min;
      break;
    case AllocationRule::kMaximumAvailable:
      lambda_alloc = 1.0;
      break;
  }
  net::Allocation alloc = lerp(lambda_alloc);
  std::vector<Seconds> final_delays = probe.eval(alloc);
  if (!all_deadlines_met(probe.set, final_delays)) {
    // Bisection resolution can leave λ_alloc a hair inside the infeasible
    // side; the saturated point and max_avail are feasible by construction.
    alloc = lerp(lambda_max);
    final_delays = probe.eval(alloc);
    if (!all_deadlines_met(probe.set, final_delays)) {
      alloc = max_avail;
      final_delays = ref_delays;
    }
  }

  auto& src_ledger = ledgers_[static_cast<std::size_t>(spec.src.ring)];
  const bool got_s = src_ledger.reserve(spec.id, alloc.h_s);
  HETNET_CHECK(got_s, "source-ring reservation must succeed on the line");
  if (!intra_ring) {
    auto& dst_ledger = ledgers_[static_cast<std::size_t>(spec.dst.ring)];
    const bool got_r = dst_ledger.reserve(spec.id, alloc.h_r);
    HETNET_CHECK(got_r, "destination-ring reservation must succeed");
  }
  active_.emplace(spec.id, net::ActiveConnection{spec, alloc});

  decision.admitted = true;
  decision.alloc = alloc;
  decision.worst_case_delay = final_delays.back();
  m_admitted_->increment();
  // Tier classification for the admit: screen_admit means the step-2
  // screen resolved the admit/reject DECISION before any exact Theorem-4
  // evaluation — the exact engine (and Tier-B memo) only computed the
  // allocation values. Memo-warm requests skip the screen entirely and
  // classify as the exact tier; how much of the bisection the screen
  // absorbed is tracked by the cac.screen.* counters.
  const bool screen_admit = screen_admit_cert;
  (screen_admit ? m_tier_screen_admit_ : m_tier_fallback_)->increment();
  flush_probe_metrics();
  if (sink != nullptr) {
    rec.admitted = true;
    rec.reason = "admitted";
    rec.decision_tier = screen_admit ? "screen_admit" : "exact";
    rec.screen_ns = probe.screen_ns;
    rec.exact_ns = probe.exact_ns;
    rec.granted = alloc;
    rec.max_avail = decision.max_avail;
    rec.min_need = decision.min_need;
    rec.max_need = decision.max_need;
    rec.bound = final_delays.back();
    rec.slack = spec.deadline - rec.bound;
    rec.probe_evals = probe.evals;
    fill_binding(final_delays);
    fill_stages(alloc);
    sink->add(std::move(rec));
  }
  return decision;
}

const SendPrefix& AdmissionController::cached_prefix(
    net::ConnectionId id, const net::ActiveConnection& conn) const {
  auto it = prefix_cache_.find(id);
  if (it == prefix_cache_.end() || it->second.h_s != conn.alloc.h_s) {
    it = prefix_cache_
             .insert_or_assign(
                 id, PrefixCacheEntry{
                         conn.alloc.h_s,
                         analyzer_.send_prefix(conn.spec, conn.alloc.h_s)})
             .first;
  }
  return it->second.prefix;
}

void AdmissionController::release(net::ConnectionId id) {
  const auto it = active_.find(id);
  HETNET_CHECK(it != active_.end(), "releasing an unknown connection");
  ledgers_[static_cast<std::size_t>(it->second.spec.src.ring)].release(id);
  if (it->second.spec.src.ring != it->second.spec.dst.ring) {
    ledgers_[static_cast<std::size_t>(it->second.spec.dst.ring)].release(id);
  }
  const std::uint64_t source_fp = it->second.spec.source->fingerprint();
  active_.erase(it);
  // Invalidate the released connection's send-prefix cache entries. The
  // AnalysisSession needs no invalidation for correctness (its keys are
  // pure envelope fingerprints, so entries the released connection
  // contributed to simply stop being referenced), but reclaiming the
  // entries keyed DIRECTLY to a source no remaining connection uses — its
  // compiled flat twin and its candidate-prefix compilations — keeps a
  // long-lived controller's tables populated by live state instead of
  // leaning on generation rotations to age dead sources out.
  prefix_cache_.erase(id);
  screen_prefix_cache_.erase(id);
  for (const auto& [other_id, other] : active_) {
    if (other.spec.source->fingerprint() == source_fp) return;
  }
  session_.release_source(source_fp);
  const std::uint64_t reclaimed = candidate_prefix_cache_.erase_if(
      [source_fp](const CandidatePrefixKey& key) {
        return std::get<1>(key) == source_fp;
      });
  m_release_invalidations_->add(reclaimed + 1);
}

int AdmissionController::prewarm(const std::vector<net::ConnectionSpec>& specs) {
  if (!config_.incremental || specs.empty()) return 0;
  // Serial prologue: materialize one probe per spec that could actually
  // reach an analysis — building probes and candidate prefixes here (in
  // batch order) keeps every compile-cache mutation serial and makes the
  // concurrent phase read-only on shared state.
  struct Job {
    std::unique_ptr<Probe> probe;
    std::uint64_t digest = 0;
  };
  std::vector<Job> jobs;
  jobs.reserve(specs.size());
  for (const net::ConnectionSpec& spec : specs) {
    if (spec.source == nullptr || !(spec.deadline > 0)) continue;
    if (!topology_->valid_host(spec.src) || !topology_->valid_host(spec.dst)) {
      continue;
    }
    if (active_.contains(spec.id)) continue;
    const bool intra_ring = spec.src.ring == spec.dst.ring;
    const Seconds h_s_max =
        ledgers_[static_cast<std::size_t>(spec.src.ring)].available();
    const Seconds h_r_max =
        intra_ring
            ? Seconds{}
            : ledgers_[static_cast<std::size_t>(spec.dst.ring)].available();
    if (h_s_max < config_.h_min_abs ||
        (!intra_ring && h_r_max < config_.h_min_abs)) {
      continue;  // request() answers this from the ledgers alone (step 1)
    }
    Job job;
    job.probe = std::make_unique<Probe>(*this, spec);
    job.probe->set.back().alloc = {h_s_max, h_r_max};
    job.probe->prefixes.back() = job.probe->candidate_prefix(h_s_max);
    if (tiered_active()) {
      job.digest = job.probe->decision_digest();
      if (session_.decision_contains(job.digest)) continue;  // already warm
      // Batch-internal dedup: two specs sharing (source, route, alloc)
      // digest identically; evaluating one warms both.
      bool dup = false;
      for (const Job& prior : jobs) dup = dup || prior.digest == job.digest;
      if (dup) continue;
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) return 0;
  m_prewarm_batches_->increment();
  m_prewarm_points_->add(std::uint64_t(jobs.size()));
  HETNET_OBS_SPAN_NAMED(span, "cac.prewarm_batch", "cac");
  span.arg("points", std::int64_t(jobs.size()));
  // Concurrent phase: each job analyzes its own probe state against the
  // shared session (read-only) with a private overlay. Index-owned slots;
  // no shared mutation.
  std::vector<AnalysisSession> overlays(jobs.size());
  std::vector<std::vector<Seconds>> results(jobs.size());
  util::parallel_for(jobs.size(), config_.analysis.threads,
                     [&](std::size_t k) {
                       results[k] = analyzer_.complete_speculative(
                           jobs[k].probe->set, jobs[k].probe->prefixes,
                           session_, overlays[k]);
                     });
  // Serial epilogue in batch order: deterministic absorb + memo feed.
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    session_.absorb(std::move(overlays[k]));
    if (tiered_active()) {
      session_.decision_store(jobs[k].digest, std::move(results[k]));
    }
  }
  return static_cast<int>(jobs.size());
}

// The candidate connection's admit-safe flattened source (Rounding::kUp),
// served from the session's FlatCache so every screen that sees the same
// source fingerprint shares ONE compiled object — pointer-stable sharing
// keeps the screen session's memo keys identical across requests.
EnvelopePtr AdmissionController::flat_source(const EnvelopePtr& source) const {
  const std::uint64_t fp = source->fingerprint();
  if (EnvelopePtr hit = session_.flat_lookup(fp)) return hit;
  EnvelopePtr flat = flat_from_envelope(source, config_.screen_horizon,
                                        config_.screen_max_segments,
                                        Rounding::kUp);
  session_.flat_store(fp, flat);
  return flat;
}

// The screen twin of cached_prefix(): an active connection's send prefix
// under the SCREEN analyzer with its flattened source, recompiled only when
// its H_S changes. Kept separate from the exact cache because the two
// analyzers rasterize differently — their prefixes must never be conflated.
const SendPrefix& AdmissionController::screen_cached_prefix(
    net::ConnectionId id, const net::ActiveConnection& conn) const {
  auto it = screen_prefix_cache_.find(id);
  if (it == screen_prefix_cache_.end() || it->second.h_s != conn.alloc.h_s) {
    net::ConnectionSpec flat_spec = conn.spec;
    flat_spec.source = flat_source(conn.spec.source);
    it = screen_prefix_cache_
             .insert_or_assign(
                 id,
                 PrefixCacheEntry{
                     conn.alloc.h_s,
                     screen_analyzer_.send_prefix(flat_spec, conn.alloc.h_s)})
             .first;
  }
  return it->second.prefix;
}

// Cross-request candidate-prefix cache. A send prefix depends only on the
// source envelope, the source segment's resolved medium, whether the route
// stays on one ring, H_S, and which analyzer compiles it (screen vs exact
// rasterize differently) — NOT on the connection id — so keying on those
// makes every request for the same (source, medium, route shape, H_S) point
// reuse the same SendPrefix object. That sharing is what keeps the decision
// digest stable across requests: the digest folds the prefix's at_uplink
// fingerprint, which is per-object for non-structural envelope types.
const SendPrefix& AdmissionController::compiled_candidate_prefix(
    bool screen, const net::ConnectionSpec& spec, Seconds h_s) const {
  const CandidatePrefixKey key{
      screen, spec.source->fingerprint(),
      topology_->access_medium(spec.src.ring).config_digest(),
      spec.src.ring == spec.dst.ring, fp::of_double(h_s.value())};
  if (const SendPrefix* hit = candidate_prefix_cache_.lookup(key)) {
    return *hit;
  }
  const SendPrefix& compiled = candidate_prefix_cache_.emplace(
      key, (screen ? screen_analyzer_ : analyzer_).send_prefix(spec, h_s));
  // Generational bound, sized like the session tables. Rotation demotes the
  // hot generation (node moves only — `compiled` stays valid) and drops the
  // stale one; actively re-looked-up prefixes are re-promoted each use, so
  // the hot working set — and the decision digests anchored to these
  // objects' fingerprints — survives, where the previous wholesale clear
  // stranded every memoized decision at once. Release-keyed invalidation
  // (release()) reclaims dead sources' entries eagerly either way.
  candidate_prefix_evictions_ += candidate_prefix_cache_.rotate_if_above(
      std::max<std::size_t>(config_.session_max_entries / 2, 1));
  return compiled;
}

bool AdmissionController::feasible_at(const net::ConnectionSpec& spec,
                                      const net::Allocation& alloc) const {
  Probe probe(*this, spec);
  const bool feasible = probe.feasible(alloc);
  m_probe_evals_->add(std::uint64_t(probe.evals));
  return feasible;
}

Seconds AdmissionController::delay_at(const net::ConnectionSpec& spec,
                                      const net::Allocation& alloc) const {
  Probe probe(*this, spec);
  const Seconds delay = probe.eval(alloc).back();
  m_probe_evals_->add(std::uint64_t(probe.evals));
  return delay;
}

}  // namespace hetnet::core
