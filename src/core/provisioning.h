// Provisioning report: what a deployment must dimension so the admitted
// contracts hold. The QoS requirement of Section 3.2 includes "no buffer
// overflow in the network"; this module turns the analysis' buffer bounds
// into an operational answer — per-ring synchronous budgets, per-port ATM
// buffer sizes, and per-connection private buffer needs.
#pragma once

#include <string>
#include <vector>

#include "src/core/cac.h"

namespace hetnet::core {

struct RingProvision {
  int ring = 0;
  Seconds allocated;  // Ω
  Seconds capacity;   // TTRT − Δ
  std::size_t reservations = 0;
};

struct PortProvision {
  atm::PortId port = -1;
  int flows = 0;
  Seconds delay_bound;  // the port-wide FIFO bound
  Bits buffer_required;
};

struct ConnectionProvision {
  net::ConnectionId id = 0;
  Seconds worst_case_delay;
  Seconds deadline;
  // Buffer the connection needs in its PRIVATE stages (host MAC, interface
  // device conversions, receive MAC) — shared ATM port buffers are reported
  // per port, not per connection.
  Bits private_buffers;
};

struct ProvisioningReport {
  std::vector<RingProvision> rings;
  std::vector<PortProvision> ports;
  std::vector<ConnectionProvision> connections;

  // Human-readable rendering (three aligned tables).
  std::string to_string() const;
};

// Builds the report for the controller's current admitted set.
ProvisioningReport provisioning_report(const AdmissionController& cac);

}  // namespace hetnet::core
