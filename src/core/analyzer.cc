#include "src/core/analyzer.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "src/fddi/ring.h"
#include "src/servers/constant_delay.h"
#include "src/servers/conversion.h"
#include "src/servers/fddi_mac.h"
#include "src/servers/fifo_mux.h"
#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"

namespace hetnet::core {
namespace {

// Runs `server` on `env`, accumulating delay and (optionally) the stage
// breakdown. Returns false when the server reports no finite bound.
bool run_stage(const Server& server, EnvelopePtr& env, Seconds& delay,
               std::vector<ChainStage>* stages) {
  auto result = server.analyze(env);
  if (!result.has_value()) return false;
  delay += result->worst_case_delay;
  env = result->output;
  if (stages != nullptr) {
    stages->push_back({server.name(), std::move(*result)});
  }
  return true;
}

// Cheap fixed-format port label (the hot Kahn loop used to pay for an
// ostringstream per port per probe).
std::string port_name(atm::PortId port) {
  return "ATM.Port[" + std::to_string(port) + "]";
}

}  // namespace

DelayAnalyzer::DelayAnalyzer(const net::AbhnTopology* topology,
                             const AnalysisConfig& config)
    : topology_(topology), config_(config) {
  HETNET_CHECK(topology_ != nullptr, "null topology");
}

// Shared worker for send_prefix() and breakdown(): walks the private
// send-side servers, optionally recording the stage breakdown.
SendPrefix DelayAnalyzer::prefix_with_stages(
    const net::ConnectionSpec& spec, Seconds h_s,
    std::vector<ChainStage>* stages) const {
  HETNET_CHECK(spec.source != nullptr, "connection has no source envelope");
  const net::TopologyParams& p = topology_->params();
  SendPrefix out;
  if (h_s <= 0.0 || h_s > p.ring.ttrt) return out;  // not a usable allocation

  const Bits frame_s = fddi::frame_payload_for_allocation(p.ring, h_s);
  FddiMacParams mac;
  mac.ttrt = p.ring.ttrt;
  mac.sync_allocation = h_s;
  mac.ring_rate = fddi::effective_payload_rate(p.ring, frame_s);
  mac.buffer_limit = p.host_mac_buffer;
  const FddiMacServer mac_server("FDDI_S.MAC", mac, config_);

  const ConstantDelayServer delay_line("FDDI_S.Delay_Line",
                                       p.ring.propagation);
  const ConstantDelayServer input_port("ID_S.Input_Port",
                                       p.interface_device.input_port_delay);
  const ConstantDelayServer frame_switch(
      "ID_S.Frame_Switch", p.interface_device.frame_switch_delay);
  const auto conversion = make_frame_to_cell_server(
      "ID_S.Frame_Cell_Conversion", frame_s, p.cells.payload, p.cells.payload,
      p.interface_device.frame_cell_conversion);

  EnvelopePtr env = spec.source;
  Seconds delay;
  std::vector<const Server*> path;
  if (spec.src.ring == spec.dst.ring) {
    // Section 4.1 case 1: the ring delivers directly — the "prefix" is the
    // whole path (MAC + delay line to the destination host).
    path = {static_cast<const Server*>(&mac_server),
            static_cast<const Server*>(&delay_line)};
  } else {
    path = {static_cast<const Server*>(&mac_server),
            static_cast<const Server*>(&delay_line),
            static_cast<const Server*>(&input_port),
            static_cast<const Server*>(&frame_switch),
            static_cast<const Server*>(conversion.get())};
  }
  for (const Server* s : path) {
    if (!run_stage(*s, env, delay, stages)) return out;
  }
  out.finite = true;
  out.delay = delay;
  out.at_uplink = std::move(env);
  return out;
}

SendPrefix DelayAnalyzer::send_prefix(const net::ConnectionSpec& spec,
                                      Seconds h_s) const {
  return prefix_with_stages(spec, h_s, nullptr);
}

std::vector<Seconds> DelayAnalyzer::run(
    const std::vector<ConnectionInstance>& set,
    const std::vector<SendPrefix>& prefixes,
    std::vector<ChainAnalysis>* details,
    std::map<atm::PortId, PortReport>* ports,
    AnalysisSession* session) const {
  HETNET_CHECK(prefixes.size() == set.size(), "prefixes misaligned with set");
  const net::TopologyParams& p = topology_->params();
  const std::size_t n = set.size();
  // The breakdown path needs per-stage records the memo does not keep, so it
  // always recomputes.
  AnalysisSession* memo = details == nullptr ? session : nullptr;
  if (memo != nullptr) memo->trim();

  std::vector<Seconds> delays(n);
  std::vector<bool> alive(n, false);
  std::vector<EnvelopePtr> envs(n);
  std::vector<std::vector<atm::Hop>> routes(n);
  std::vector<std::size_t> next_hop(n, 0);
  std::vector<ChainAnalysis>* det = details;
  if (det != nullptr) det->assign(n, ChainAnalysis{});

  for (std::size_t i = 0; i < n; ++i) {
    const SendPrefix& pre = prefixes[i];
    if (!pre.finite) continue;
    alive[i] = true;
    delays[i] = pre.delay;
    envs[i] = pre.at_uplink;
    routes[i] = topology_->backbone_route(set[i].spec.src, set[i].spec.dst);
  }

  // ---- Shared FIFO ports, in topological (Kahn) order of the per-route
  // precedence edges. Mesh min-hop routing is feed-forward, so the order
  // always exists; a cyclic dependency is a programming error.
  std::map<atm::PortId, std::vector<std::size_t>> port_users;
  std::map<atm::PortId, int> in_degree;
  std::map<atm::PortId, std::vector<atm::PortId>> succ;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    for (std::size_t h = 0; h < routes[i].size(); ++h) {
      const atm::PortId port = routes[i][h].port;
      port_users[port].push_back(i);
      in_degree.try_emplace(port, 0);
      if (h > 0) {
        succ[routes[i][h - 1].port].push_back(port);
        ++in_degree[port];
      }
    }
  }
  std::vector<atm::PortId> ready;
  for (const auto& [port, deg] : in_degree) {
    if (deg == 0) ready.push_back(port);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const atm::PortId port = ready.back();
    ready.pop_back();
    ++processed;

    // Aggregate the live flows at this port and bound it once (the FIFO
    // delay bound is port-wide, identical for every flow).
    std::vector<EnvelopePtr> flows;
    std::vector<std::size_t> users;
    for (std::size_t i : port_users[port]) {
      if (alive[i]) {
        flows.push_back(envs[i]);
        users.push_back(i);
      }
    }
    if (!flows.empty()) {
      FifoMuxParams mux;
      mux.capacity = topology_->backbone().port_capacity(port);
      mux.non_preemption = topology_->backbone().port_cell_time(port);
      mux.cell_bits = p.cells.payload;
      mux.buffer_limit = topology_->backbone().port_link(port).port_buffer;

      // Between probes the port's live input envelopes usually have not
      // changed (only flows downstream of the candidate's route do), so the
      // port bound — and every flow's output envelope — can be reused
      // verbatim from the session memo.
      AnalysisSession::PortEntry* entry = nullptr;
      bool hit = false;
      if (memo != nullptr) {
        AnalysisSession::PortKey key{port, {}};
        key.second.reserve(flows.size());
        for (const EnvelopePtr& f : flows) {
          key.second.push_back(f->fingerprint());
        }
        const auto [it, inserted] =
            memo->ports_.try_emplace(std::move(key));
        entry = &it->second;
        hit = !inserted;
        if (hit) {
          ++memo->stats_.port_hits;
        } else {
          ++memo->stats_.port_evals;
        }
      }
      bool bounded = false;
      Seconds port_delay;
      Bits port_backlog;
      if (hit) {
        bounded = entry->bounded;
        port_delay = entry->delay;
        port_backlog = entry->backlog;
      } else {
        const FifoMuxServer server(port_name(port), mux,
                                   std::make_shared<ZeroEnvelope>(), config_);
        const auto bound = server.analyze_port(sum_envelopes(flows));
        bounded = bound.has_value();
        if (bounded) {
          port_delay = bound->worst_case_delay;
          port_backlog = bound->buffer_required;
        }
        if (entry != nullptr) {
          entry->bounded = bounded;
          entry->delay = port_delay;
          entry->backlog = port_backlog;
        }
      }
      if (ports != nullptr && bounded) {
        (*ports)[port] = {port_delay, port_backlog,
                          static_cast<int>(users.size())};
      }
      for (std::size_t i : users) {
        if (!bounded) {
          alive[i] = false;
          continue;
        }
        const atm::Hop& hop = routes[i][next_hop[i]];
        const Seconds stage_delay =
            hop.fabric + port_delay + hop.propagation;
        delays[i] += stage_delay;
        EnvelopePtr out;
        if (hit) {
          const std::uint64_t in_fp = envs[i]->fingerprint();
          for (const auto& [fp_key, env] : entry->outputs) {
            if (fp_key == in_fp) {
              out = env;
              break;
            }
          }
        }
        if (out == nullptr) {
          // Per-flow FIFO output bound (identical to FifoMuxServer::
          // flow_output): whatever leaves in a window of length I entered
          // within I + d, and one flow cannot beat the link plus one cell.
          out = rate_cap(shift_envelope(envs[i], port_delay), mux.capacity,
                         mux.cell_bits);
          if (entry != nullptr && !hit) {
            entry->outputs.emplace_back(envs[i]->fingerprint(), out);
          }
        }
        envs[i] = out;
        if (det != nullptr) {
          ServerAnalysis sa;
          sa.worst_case_delay = stage_delay;
          sa.buffer_required = port_backlog;
          sa.output = envs[i];
          (*det)[i].stages.push_back({port_name(port), std::move(sa)});
        }
        ++next_hop[i];
      }
    }
    for (const atm::PortId s : succ[port]) {
      if (--in_degree[s] == 0) ready.push_back(s);
    }
  }
  HETNET_CHECK(processed == in_degree.size(),
               "cyclic port dependencies: routing must be feed-forward");

  // ---- Receive-side suffix (ID_R + FDDI_R), private per connection.
  // Intra-ring connections were delivered by the prefix already (no
  // interface devices on their path). The suffix depends only on the
  // envelope leaving the backbone and on H_R, so the session memo reuses it
  // whenever neither changed (i.e. the flow crossed no port downstream of
  // the candidate's route).
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    if (set[i].spec.src.ring == set[i].spec.dst.ring) continue;
    const Seconds h_r = set[i].alloc.h_r;
    if (h_r <= 0.0 || h_r > p.ring.ttrt) {
      alive[i] = false;
      continue;
    }
    const AnalysisSession::SuffixEntry* walk = nullptr;
    AnalysisSession::SuffixEntry local;
    if (memo != nullptr) {
      const AnalysisSession::SuffixKey key{envs[i]->fingerprint(),
                                           fp::of_double(h_r.value())};
      const auto [it, inserted] = memo->suffixes_.try_emplace(key);
      if (inserted) {
        it->second = walk_receive_suffix(envs[i], h_r, nullptr);
        ++memo->stats_.suffix_evals;
      } else {
        ++memo->stats_.suffix_hits;
      }
      walk = &it->second;
    } else {
      std::vector<ChainStage>* stages =
          det != nullptr ? &(*det)[i].stages : nullptr;
      local = walk_receive_suffix(envs[i], h_r, stages);
      walk = &local;
    }
    if (!walk->finite) {
      alive[i] = false;
      continue;
    }
    // Replay the per-stage additions in order — bit-identical to the cold
    // walk's accumulation.
    for (const Seconds d : walk->stage_delays) delays[i] += d;
    envs[i] = walk->final_env;
  }

  // A connection with no finite bound poisons everything it shares a port
  // with: its envelope past the failing server is undefined, so bounds that
  // consumed it are not trustworthy. Iterate the taint to a fixed point.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [port, users] : port_users) {
      bool tainted = false;
      for (std::size_t i : users) {
        if (!alive[i]) tainted = true;
      }
      if (!tainted) continue;
      for (std::size_t i : users) {
        if (alive[i]) {
          alive[i] = false;
          changed = true;
        }
      }
    }
  }

  std::vector<Seconds> out(n, kUnbounded);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) {
      out[i] = delays[i];
      if (det != nullptr) {
        (*det)[i].total_delay = delays[i];
        (*det)[i].final_output = envs[i];
      }
    }
  }
  return out;
}

AnalysisSession::SuffixEntry DelayAnalyzer::walk_receive_suffix(
    const EnvelopePtr& entry, Seconds h_r,
    std::vector<ChainStage>* stages) const {
  const net::TopologyParams& p = topology_->params();
  const Bits frame_r = fddi::frame_payload_for_allocation(p.ring, h_r);
  const ConstantDelayServer input_port(
      "ID_R.Input_Port", p.interface_device.input_port_delay);
  const auto conversion = make_cell_to_frame_server(
      "ID_R.Cell_Frame_Conversion", frame_r, p.cells.payload,
      p.cells.payload, p.interface_device.cell_frame_conversion);
  const ConstantDelayServer frame_switch(
      "ID_R.Frame_Switch", p.interface_device.frame_switch_delay);
  FddiMacParams mac;
  mac.ttrt = p.ring.ttrt;
  mac.sync_allocation = h_r;
  mac.ring_rate = fddi::effective_payload_rate(p.ring, frame_r);
  mac.buffer_limit = p.interface_device.mac_buffer;
  // The receive MAC is the last queueing server on the path — its output
  // feeds only the constant delay line to the host, so the (expensive)
  // conservative rasterization of Υ buys nothing here.
  AnalysisConfig rx_config = config_;
  rx_config.rasterize_mac_output = false;
  const FddiMacServer mac_server("FDDI_R.MAC", mac, rx_config);
  const ConstantDelayServer delay_line("FDDI_R.Delay_Line",
                                       p.ring.propagation);

  AnalysisSession::SuffixEntry out;
  EnvelopePtr env = entry;
  for (const Server* s :
       {static_cast<const Server*>(&input_port),
        static_cast<const Server*>(conversion.get()),
        static_cast<const Server*>(&frame_switch),
        static_cast<const Server*>(&mac_server),
        static_cast<const Server*>(&delay_line)}) {
    Seconds stage_delay;
    if (!run_stage(*s, env, stage_delay, stages)) return out;
    out.stage_delays.push_back(stage_delay);
  }
  out.finite = true;
  out.final_env = std::move(env);
  return out;
}

std::vector<SendPrefix> DelayAnalyzer::compute_prefixes(
    const std::vector<ConnectionInstance>& set, std::ptrdiff_t stage_index,
    std::vector<ChainStage>* stages) const {
  std::vector<SendPrefix> prefixes;
  prefixes.reserve(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const ConnectionInstance& inst = set[i];
    prefixes.push_back(
        static_cast<std::ptrdiff_t>(i) == stage_index
            ? prefix_with_stages(inst.spec, inst.alloc.h_s, stages)
            : send_prefix(inst.spec, inst.alloc.h_s));
  }
  return prefixes;
}

std::vector<Seconds> DelayAnalyzer::complete(
    const std::vector<ConnectionInstance>& set,
    const std::vector<SendPrefix>& prefixes, AnalysisSession* session) const {
  return run(set, prefixes, nullptr, nullptr, session);
}

std::map<atm::PortId, DelayAnalyzer::PortReport> DelayAnalyzer::port_reports(
    const std::vector<ConnectionInstance>& set) const {
  std::map<atm::PortId, PortReport> ports;
  run(set, compute_prefixes(set), nullptr, &ports);
  return ports;
}

std::vector<Seconds> DelayAnalyzer::analyze(
    const std::vector<ConnectionInstance>& set) const {
  return run(set, compute_prefixes(set), nullptr);
}

std::optional<ChainAnalysis> DelayAnalyzer::breakdown(
    const std::vector<ConnectionInstance>& set, std::size_t index) const {
  HETNET_CHECK(index < set.size(), "breakdown index out of range");
  // The indexed connection's prefix is walked ONCE, recording its stages
  // up front (run() consumes precomputed prefixes, so the prefix stages
  // would otherwise be absent from `details`).
  ChainAnalysis full;
  const std::vector<SendPrefix> prefixes = compute_prefixes(
      set, static_cast<std::ptrdiff_t>(index), &full.stages);
  std::vector<ChainAnalysis> details;
  const auto delays = run(set, prefixes, &details);
  if (delays[index] == kUnbounded) return std::nullopt;
  HETNET_CHECK(prefixes[index].finite,
               "prefix must be finite when the bound is");
  for (auto& stage : details[index].stages) {
    full.stages.push_back(std::move(stage));
  }
  full.total_delay = delays[index];
  full.final_output = details[index].final_output;
  return full;
}

}  // namespace hetnet::core
