#include "src/core/analyzer.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "src/fddi/ring.h"
#include "src/servers/constant_delay.h"
#include "src/servers/conversion.h"
#include "src/servers/fddi_mac.h"
#include "src/servers/fifo_mux.h"
#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"

namespace hetnet::core {
namespace {

// Runs `server` on `env`, accumulating delay and (optionally) the stage
// breakdown. Returns false when the server reports no finite bound.
bool run_stage(const Server& server, EnvelopePtr& env, Seconds& delay,
               std::vector<ChainStage>* stages) {
  auto result = server.analyze(env);
  if (!result.has_value()) return false;
  delay += result->worst_case_delay;
  env = result->output;
  if (stages != nullptr) {
    stages->push_back({server.name(), std::move(*result)});
  }
  return true;
}

}  // namespace

DelayAnalyzer::DelayAnalyzer(const net::AbhnTopology* topology,
                             const AnalysisConfig& config)
    : topology_(topology), config_(config) {
  HETNET_CHECK(topology_ != nullptr, "null topology");
}

// Shared worker for send_prefix() and breakdown(): walks the private
// send-side servers, optionally recording the stage breakdown.
SendPrefix DelayAnalyzer::prefix_with_stages(
    const net::ConnectionSpec& spec, Seconds h_s,
    std::vector<ChainStage>* stages) const {
  HETNET_CHECK(spec.source != nullptr, "connection has no source envelope");
  const net::TopologyParams& p = topology_->params();
  SendPrefix out;
  if (h_s <= 0.0 || h_s > p.ring.ttrt) return out;  // not a usable allocation

  const Bits frame_s = fddi::frame_payload_for_allocation(p.ring, h_s);
  FddiMacParams mac;
  mac.ttrt = p.ring.ttrt;
  mac.sync_allocation = h_s;
  mac.ring_rate = fddi::effective_payload_rate(p.ring, frame_s);
  mac.buffer_limit = p.host_mac_buffer;
  const FddiMacServer mac_server("FDDI_S.MAC", mac, config_);

  const ConstantDelayServer delay_line("FDDI_S.Delay_Line",
                                       p.ring.propagation);
  const ConstantDelayServer input_port("ID_S.Input_Port",
                                       p.interface_device.input_port_delay);
  const ConstantDelayServer frame_switch(
      "ID_S.Frame_Switch", p.interface_device.frame_switch_delay);
  const auto conversion = make_frame_to_cell_server(
      "ID_S.Frame_Cell_Conversion", frame_s, p.cells.payload, p.cells.payload,
      p.interface_device.frame_cell_conversion);

  EnvelopePtr env = spec.source;
  Seconds delay;
  std::vector<const Server*> path;
  if (spec.src.ring == spec.dst.ring) {
    // Section 4.1 case 1: the ring delivers directly — the "prefix" is the
    // whole path (MAC + delay line to the destination host).
    path = {static_cast<const Server*>(&mac_server),
            static_cast<const Server*>(&delay_line)};
  } else {
    path = {static_cast<const Server*>(&mac_server),
            static_cast<const Server*>(&delay_line),
            static_cast<const Server*>(&input_port),
            static_cast<const Server*>(&frame_switch),
            static_cast<const Server*>(conversion.get())};
  }
  for (const Server* s : path) {
    if (!run_stage(*s, env, delay, stages)) return out;
  }
  out.finite = true;
  out.delay = delay;
  out.at_uplink = std::move(env);
  return out;
}

SendPrefix DelayAnalyzer::send_prefix(const net::ConnectionSpec& spec,
                                      Seconds h_s) const {
  return prefix_with_stages(spec, h_s, nullptr);
}

std::vector<Seconds> DelayAnalyzer::run(
    const std::vector<ConnectionInstance>& set,
    const std::vector<SendPrefix>& prefixes,
    std::vector<ChainAnalysis>* details,
    std::map<atm::PortId, PortReport>* ports) const {
  HETNET_CHECK(prefixes.size() == set.size(), "prefixes misaligned with set");
  const net::TopologyParams& p = topology_->params();
  const std::size_t n = set.size();

  std::vector<Seconds> delays(n);
  std::vector<bool> alive(n, false);
  std::vector<EnvelopePtr> envs(n);
  std::vector<std::vector<atm::Hop>> routes(n);
  std::vector<std::size_t> next_hop(n, 0);
  std::vector<ChainAnalysis>* det = details;
  if (det != nullptr) det->assign(n, ChainAnalysis{});

  for (std::size_t i = 0; i < n; ++i) {
    const SendPrefix& pre = prefixes[i];
    if (!pre.finite) continue;
    alive[i] = true;
    delays[i] = pre.delay;
    envs[i] = pre.at_uplink;
    routes[i] = topology_->backbone_route(set[i].spec.src, set[i].spec.dst);
  }

  // ---- Shared FIFO ports, in topological (Kahn) order of the per-route
  // precedence edges. Mesh min-hop routing is feed-forward, so the order
  // always exists; a cyclic dependency is a programming error.
  std::map<atm::PortId, std::vector<std::size_t>> port_users;
  std::map<atm::PortId, int> in_degree;
  std::map<atm::PortId, std::vector<atm::PortId>> succ;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    for (std::size_t h = 0; h < routes[i].size(); ++h) {
      const atm::PortId port = routes[i][h].port;
      port_users[port].push_back(i);
      in_degree.try_emplace(port, 0);
      if (h > 0) {
        succ[routes[i][h - 1].port].push_back(port);
        ++in_degree[port];
      }
    }
  }
  std::vector<atm::PortId> ready;
  for (const auto& [port, deg] : in_degree) {
    if (deg == 0) ready.push_back(port);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const atm::PortId port = ready.back();
    ready.pop_back();
    ++processed;

    // Aggregate the live flows at this port and bound it once (the FIFO
    // delay bound is port-wide, identical for every flow).
    std::vector<EnvelopePtr> flows;
    std::vector<std::size_t> users;
    for (std::size_t i : port_users[port]) {
      if (alive[i]) {
        flows.push_back(envs[i]);
        users.push_back(i);
      }
    }
    if (!flows.empty()) {
      FifoMuxParams mux;
      mux.capacity = topology_->backbone().port_capacity(port);
      mux.non_preemption = topology_->backbone().port_cell_time(port);
      mux.cell_bits = p.cells.payload;
      mux.buffer_limit = topology_->backbone().port_link(port).port_buffer;
      std::ostringstream name;
      name << "ATM.Port[" << port << "]";
      const FifoMuxServer server(name.str(), mux,
                                 std::make_shared<ZeroEnvelope>(), config_);
      const auto bound = server.analyze(sum_envelopes(flows));
      if (ports != nullptr && bound.has_value()) {
        (*ports)[port] = {bound->worst_case_delay, bound->buffer_required,
                          static_cast<int>(users.size())};
      }
      for (std::size_t i : users) {
        if (!bound.has_value()) {
          alive[i] = false;
          continue;
        }
        const atm::Hop& hop = routes[i][next_hop[i]];
        const Seconds stage_delay =
            hop.fabric + bound->worst_case_delay + hop.propagation;
        delays[i] += stage_delay;
        envs[i] = rate_cap(shift_envelope(envs[i], bound->worst_case_delay),
                           mux.capacity, mux.cell_bits);
        if (det != nullptr) {
          ServerAnalysis sa;
          sa.worst_case_delay = stage_delay;
          sa.buffer_required = bound->buffer_required;
          sa.output = envs[i];
          (*det)[i].stages.push_back({name.str(), std::move(sa)});
        }
        ++next_hop[i];
      }
    }
    for (const atm::PortId s : succ[port]) {
      if (--in_degree[s] == 0) ready.push_back(s);
    }
  }
  HETNET_CHECK(processed == in_degree.size(),
               "cyclic port dependencies: routing must be feed-forward");

  // ---- Receive-side suffix (ID_R + FDDI_R), private per connection.
  // Intra-ring connections were delivered by the prefix already (no
  // interface devices on their path).
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    if (set[i].spec.src.ring == set[i].spec.dst.ring) continue;
    const Seconds h_r = set[i].alloc.h_r;
    if (h_r <= 0.0 || h_r > p.ring.ttrt) {
      alive[i] = false;
      continue;
    }
    const Bits frame_r = fddi::frame_payload_for_allocation(p.ring, h_r);
    const ConstantDelayServer input_port(
        "ID_R.Input_Port", p.interface_device.input_port_delay);
    const auto conversion = make_cell_to_frame_server(
        "ID_R.Cell_Frame_Conversion", frame_r, p.cells.payload,
        p.cells.payload, p.interface_device.cell_frame_conversion);
    const ConstantDelayServer frame_switch(
        "ID_R.Frame_Switch", p.interface_device.frame_switch_delay);
    FddiMacParams mac;
    mac.ttrt = p.ring.ttrt;
    mac.sync_allocation = h_r;
    mac.ring_rate = fddi::effective_payload_rate(p.ring, frame_r);
    mac.buffer_limit = p.interface_device.mac_buffer;
    // The receive MAC is the last queueing server on the path — its output
    // feeds only the constant delay line to the host, so the (expensive)
    // conservative rasterization of Υ buys nothing here.
    AnalysisConfig rx_config = config_;
    rx_config.rasterize_mac_output = false;
    const FddiMacServer mac_server("FDDI_R.MAC", mac, rx_config);
    const ConstantDelayServer delay_line("FDDI_R.Delay_Line",
                                         p.ring.propagation);

    std::vector<ChainStage>* stages =
        det != nullptr ? &(*det)[i].stages : nullptr;
    for (const Server* s :
         {static_cast<const Server*>(&input_port),
          static_cast<const Server*>(conversion.get()),
          static_cast<const Server*>(&frame_switch),
          static_cast<const Server*>(&mac_server),
          static_cast<const Server*>(&delay_line)}) {
      if (!run_stage(*s, envs[i], delays[i], stages)) {
        alive[i] = false;
        break;
      }
    }
  }

  // A connection with no finite bound poisons everything it shares a port
  // with: its envelope past the failing server is undefined, so bounds that
  // consumed it are not trustworthy. Iterate the taint to a fixed point.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [port, users] : port_users) {
      bool tainted = false;
      for (std::size_t i : users) {
        if (!alive[i]) tainted = true;
      }
      if (!tainted) continue;
      for (std::size_t i : users) {
        if (alive[i]) {
          alive[i] = false;
          changed = true;
        }
      }
    }
  }

  std::vector<Seconds> out(n, kUnbounded);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) {
      out[i] = delays[i];
      if (det != nullptr) {
        (*det)[i].total_delay = delays[i];
        (*det)[i].final_output = envs[i];
      }
    }
  }
  return out;
}

std::vector<Seconds> DelayAnalyzer::complete(
    const std::vector<ConnectionInstance>& set,
    const std::vector<SendPrefix>& prefixes) const {
  return run(set, prefixes, nullptr);
}

std::map<atm::PortId, DelayAnalyzer::PortReport> DelayAnalyzer::port_reports(
    const std::vector<ConnectionInstance>& set) const {
  std::vector<SendPrefix> prefixes;
  prefixes.reserve(set.size());
  for (const auto& inst : set) {
    prefixes.push_back(send_prefix(inst.spec, inst.alloc.h_s));
  }
  std::map<atm::PortId, PortReport> ports;
  run(set, prefixes, nullptr, &ports);
  return ports;
}

std::vector<Seconds> DelayAnalyzer::analyze(
    const std::vector<ConnectionInstance>& set) const {
  std::vector<SendPrefix> prefixes;
  prefixes.reserve(set.size());
  for (const auto& inst : set) {
    prefixes.push_back(send_prefix(inst.spec, inst.alloc.h_s));
  }
  return run(set, prefixes, nullptr);
}

std::optional<ChainAnalysis> DelayAnalyzer::breakdown(
    const std::vector<ConnectionInstance>& set, std::size_t index) const {
  HETNET_CHECK(index < set.size(), "breakdown index out of range");
  std::vector<SendPrefix> prefixes;
  std::vector<ChainAnalysis> details;
  prefixes.reserve(set.size());
  for (const auto& inst : set) {
    prefixes.push_back(send_prefix(inst.spec, inst.alloc.h_s));
  }
  const auto delays = run(set, prefixes, &details);
  if (delays[index] == kUnbounded) return std::nullopt;
  // run() consumed precomputed prefixes, so the prefix stages are absent
  // from `details`; re-walk the private prefix once with stage recording.
  ChainAnalysis full;
  const SendPrefix pre = prefix_with_stages(set[index].spec,
                                            set[index].alloc.h_s,
                                            &full.stages);
  HETNET_CHECK(pre.finite, "prefix must be finite when the bound is");
  for (auto& stage : details[index].stages) {
    full.stages.push_back(std::move(stage));
  }
  full.total_delay = delays[index];
  full.final_output = details[index].final_output;
  return full;
}

}  // namespace hetnet::core
