#include "src/core/analyzer.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "src/obs/span.h"
#include "src/servers/fifo_mux.h"
#include "src/servers/registry.h"
#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace hetnet::core {
namespace {

// Runs `server` on `env`, accumulating delay and (optionally) the stage
// breakdown. Returns false when the server reports no finite bound.
bool run_stage(const Server& server, EnvelopePtr& env, Seconds& delay,
               std::vector<ChainStage>* stages) {
  auto result = server.analyze(env);
  if (!result.has_value()) return false;
  delay += result->worst_case_delay;
  env = result->output;
  if (stages != nullptr) {
    stages->push_back({server.name(), std::move(*result)});
  }
  return true;
}

// An allocation the medium cannot serve: nonpositive, above the segment's
// ceiling, or quantized away entirely (e.g. below one TDMA slot).
bool unusable_allocation(const servers::AccessMedium& medium, Seconds h) {
  return h <= 0.0 || h > medium.max_allocation() ||
         !(medium.usable_budget(h) > 0.0);
}

}  // namespace

DelayAnalyzer::DelayAnalyzer(const net::AbhnTopology* topology,
                             const AnalysisConfig& config)
    : topology_(topology), config_(config) {
  HETNET_CHECK(topology_ != nullptr, "null topology");
}

// Shared worker for send_prefix() and breakdown(): walks the private
// send-side servers, optionally recording the stage breakdown.
SendPrefix DelayAnalyzer::prefix_with_stages(
    const net::ConnectionSpec& spec, Seconds h_s,
    std::vector<ChainStage>* stages) const {
  HETNET_CHECK(spec.source != nullptr, "connection has no source envelope");
  const servers::AccessMedium& medium =
      topology_->access_medium(spec.src.ring);
  SendPrefix out;
  if (unusable_allocation(medium, h_s)) return out;

  // Section 4.1 case 1 (intra-ring): the segment delivers directly — the
  // "prefix" is the whole path (MAC + delay line to the destination host).
  // Otherwise the medium appends its interface-device ingress through the
  // frame→cell conversion.
  const std::vector<ServerPtr> path = medium.send_stages(
      h_s, spec.src.ring == spec.dst.ring, config_);
  EnvelopePtr env = spec.source;
  Seconds delay;
  for (const ServerPtr& s : path) {
    if (!run_stage(*s, env, delay, stages)) return out;
  }
  out.finite = true;
  out.delay = delay;
  out.at_uplink = std::move(env);
  return out;
}

SendPrefix DelayAnalyzer::send_prefix(const net::ConnectionSpec& spec,
                                      Seconds h_s) const {
  return prefix_with_stages(spec, h_s, nullptr);
}

std::vector<Seconds> DelayAnalyzer::run(
    const std::vector<ConnectionInstance>& set,
    const std::vector<SendPrefix>& prefixes,
    std::vector<ChainAnalysis>* details,
    std::map<atm::PortId, PortReport>* ports,
    AnalysisSession* session,
    const AnalysisSession* read_base) const {
  HETNET_CHECK(prefixes.size() == set.size(), "prefixes misaligned with set");
  HETNET_OBS_SPAN_NAMED(run_span, "analyzer.run", "analysis");
  run_span.arg("connections", std::int64_t(set.size()));
  const net::TopologyParams& p = topology_->params();
  const servers::BackboneMedium& backbone_medium =
      topology_->backbone_medium();
  const std::size_t n = set.size();
  const int threads = config_.threads;
  // The breakdown path needs per-stage records the memo does not keep, so it
  // always recomputes.
  AnalysisSession* memo = details == nullptr ? session : nullptr;
  if (memo != nullptr) memo->trim();

  std::vector<Seconds> delays(n);
  std::vector<bool> alive(n, false);
  std::vector<EnvelopePtr> envs(n);
  std::vector<std::vector<atm::Hop>> routes(n);
  std::vector<std::size_t> next_hop(n, 0);
  std::vector<ChainAnalysis>* det = details;
  if (det != nullptr) det->assign(n, ChainAnalysis{});

  for (std::size_t i = 0; i < n; ++i) {
    const SendPrefix& pre = prefixes[i];
    if (!pre.finite) continue;
    alive[i] = true;
    delays[i] = pre.delay;
    envs[i] = pre.at_uplink;
    routes[i] = topology_->backbone_route(set[i].spec.src, set[i].spec.dst);
  }

  // ---- Shared FIFO ports, in topological (Kahn) order of the per-route
  // precedence edges. Mesh min-hop routing is feed-forward, so the order
  // always exists; a cyclic dependency is a programming error.
  std::map<atm::PortId, std::vector<std::size_t>> port_users;
  std::map<atm::PortId, int> in_degree;
  std::map<atm::PortId, std::vector<atm::PortId>> succ;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    for (std::size_t h = 0; h < routes[i].size(); ++h) {
      const atm::PortId port = routes[i][h].port;
      port_users[port].push_back(i);
      in_degree.try_emplace(port, 0);
      if (h > 0) {
        succ[routes[i][h - 1].port].push_back(port);
        ++in_degree[port];
      }
    }
  }
  // Level-synchronous (wave) traversal: every port whose predecessors are
  // all processed forms the current wave. Same-wave ports never share a
  // live connection (a route's ports form a precedence chain), so their
  // bounds are computed concurrently; memo lookups, stats, and state
  // application happen in serial pre-/post-passes in wave order, keeping
  // results and counters bit-identical for every thread count.
  struct PortTask {
    atm::PortId port;
    std::vector<std::size_t> users;  // live users, in connection order
    std::vector<EnvelopePtr> flows;  // their envelopes entering the port
    FifoMuxParams mux;
    AnalysisSession::PortKey key;                       // memo only
    const AnalysisSession::PortEntry* hit = nullptr;    // memo only
    // Miss path, filled by the (possibly parallel) compute pass:
    bool bounded = false;
    Seconds delay;
    Bits backlog;
    std::vector<EnvelopePtr> outputs;  // per user, iff bounded
  };
  std::vector<atm::PortId> wave;
  for (const auto& [port, deg] : in_degree) {
    if (deg == 0) wave.push_back(port);
  }
  std::size_t processed = 0;
  std::vector<PortTask> tasks;
  std::int64_t wave_index = 0;
  while (!wave.empty()) {
    HETNET_OBS_SPAN_NAMED(wave_span, "analyzer.wave", "analysis");
    wave_span.arg("wave", wave_index++).arg("ports",
                                            std::int64_t(wave.size()));
    // -- Serial pre-pass: gather the live flows per port and resolve the
    // memo. Between probes a port's live input envelopes usually have not
    // changed (only flows downstream of the candidate's route do), so the
    // port bound — and every flow's output envelope — can be reused
    // verbatim from the session memo.
    tasks.clear();
    for (const atm::PortId port : wave) {
      ++processed;
      PortTask t;
      t.port = port;
      for (std::size_t i : port_users[port]) {
        if (alive[i]) {
          t.flows.push_back(envs[i]);
          t.users.push_back(i);
        }
      }
      if (t.flows.empty()) continue;
      t.mux.capacity = topology_->backbone().port_capacity(port);
      t.mux.non_preemption = topology_->backbone().port_cell_time(port);
      t.mux.cell_bits = p.cells.payload;
      t.mux.buffer_limit = topology_->backbone().port_link(port).port_buffer;
      if (memo != nullptr) {
        t.key.first = port;
        t.key.second.reserve(t.flows.size());
        for (const EnvelopePtr& f : t.flows) {
          t.key.second.push_back(f->fingerprint());
        }
        if (const AnalysisSession::PortEntry* own =
                memo->ports_.lookup(t.key)) {
          t.hit = own;
        } else if (read_base != nullptr) {
          // Shared read-only base: peek() only — promotion would mutate a
          // session other speculative runs are reading concurrently.
          t.hit = read_base->ports_.peek(t.key);
        }
        if (t.hit != nullptr) {
          ++memo->stats_.port_hits;
        } else {
          ++memo->stats_.port_evals;
        }
      }
      tasks.push_back(std::move(t));
    }

    // -- Parallel compute pass: bound every missed port and derive its
    // users' output envelopes. Pure function of the task's inputs (disjoint
    // across same-wave ports), so any schedule yields identical bits.
    util::parallel_for(tasks.size(), threads, [&](std::size_t k) {
      PortTask& t = tasks[k];
      if (t.hit != nullptr) return;
      const FifoMuxServer server(backbone_medium.port_label(t.port), t.mux,
                                 std::make_shared<ZeroEnvelope>(), config_);
      const auto bound = server.analyze_port(sum_envelopes(t.flows));
      t.bounded = bound.has_value();
      if (!t.bounded) return;
      t.delay = bound->worst_case_delay;
      t.backlog = bound->buffer_required;
      t.outputs.reserve(t.flows.size());
      for (const EnvelopePtr& f : t.flows) {
        // Per-flow FIFO output bound (identical to FifoMuxServer::
        // flow_output): whatever leaves in a window of length I entered
        // within I + d, and one flow cannot beat the link plus one cell.
        t.outputs.push_back(rate_cap(shift_envelope(f, t.delay),
                                     t.mux.capacity, t.mux.cell_bits));
      }
    });

    // -- Serial apply pass, in wave order: record memo entries, update
    // per-connection delays/envelopes, and report port bounds.
    for (PortTask& t : tasks) {
      bool bounded;
      Seconds port_delay;
      Bits port_backlog;
      if (t.hit != nullptr) {
        bounded = t.hit->bounded;
        port_delay = t.hit->delay;
        port_backlog = t.hit->backlog;
      } else {
        bounded = t.bounded;
        port_delay = t.delay;
        port_backlog = t.backlog;
        if (memo != nullptr) {
          AnalysisSession::PortEntry e;
          e.bounded = bounded;
          e.delay = port_delay;
          e.backlog = port_backlog;
          if (bounded) {
            for (std::size_t u = 0; u < t.users.size(); ++u) {
              e.outputs.emplace_back(t.flows[u]->fingerprint(),
                                     t.outputs[u]);
            }
          }
          memo->ports_.emplace(std::move(t.key), std::move(e));
        }
      }
      if (ports != nullptr && bounded) {
        (*ports)[t.port] = {port_delay, port_backlog,
                            static_cast<int>(t.users.size())};
      }
      for (std::size_t u = 0; u < t.users.size(); ++u) {
        const std::size_t i = t.users[u];
        if (!bounded) {
          alive[i] = false;
          continue;
        }
        const atm::Hop& hop = routes[i][next_hop[i]];
        const Seconds stage_delay = hop.fabric + port_delay + hop.propagation;
        delays[i] += stage_delay;
        EnvelopePtr out;
        if (t.hit != nullptr) {
          const std::uint64_t in_fp = t.flows[u]->fingerprint();
          for (const auto& [fp_key, env] : t.hit->outputs) {
            if (fp_key == in_fp) {
              out = env;
              break;
            }
          }
          if (out == nullptr) {
            // Defensive: a bounded hit entry keyed on these fingerprints
            // stores an output per input, so this should never fire.
            out = rate_cap(shift_envelope(t.flows[u], port_delay),
                           t.mux.capacity, t.mux.cell_bits);
          }
        } else {
          out = t.outputs[u];
        }
        envs[i] = out;
        if (det != nullptr) {
          ServerAnalysis sa;
          sa.worst_case_delay = stage_delay;
          sa.buffer_required = port_backlog;
          sa.output = envs[i];
          (*det)[i].stages.push_back(
              {backbone_medium.port_label(t.port), std::move(sa)});
        }
        ++next_hop[i];
      }
    }

    std::vector<atm::PortId> next_wave;
    for (const atm::PortId port : wave) {
      for (const atm::PortId s : succ[port]) {
        if (--in_degree[s] == 0) next_wave.push_back(s);
      }
    }
    wave = std::move(next_wave);
  }
  HETNET_CHECK(processed == in_degree.size(),
               "cyclic port dependencies: routing must be feed-forward");

  // ---- Receive-side suffix (ID_R + FDDI_R), private per connection.
  // Intra-ring connections were delivered by the prefix already (no
  // interface devices on their path). The suffix depends only on the
  // envelope leaving the backbone and on H_R, so the session memo reuses it
  // whenever neither changed (i.e. the flow crossed no port downstream of
  // the candidate's route).
  if (det != nullptr) {
    // Breakdown path: serial, recording per-stage details (memo is off).
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      if (set[i].spec.src.ring == set[i].spec.dst.ring) continue;
      const Seconds h_r = set[i].alloc.h_r;
      const servers::AccessMedium& dst_medium =
          topology_->access_medium(set[i].spec.dst.ring);
      if (unusable_allocation(dst_medium, h_r)) {
        alive[i] = false;
        continue;
      }
      const AnalysisSession::SuffixEntry local =
          walk_receive_suffix(envs[i], h_r, dst_medium, &(*det)[i].stages);
      if (!local.finite) {
        alive[i] = false;
        continue;
      }
      for (const Seconds d : local.stage_delays) delays[i] += d;
      envs[i] = local.final_env;
    }
  } else {
    // Serial pre-pass in connection order: resolve memo hits and dedupe the
    // walks that still need computing (two connections sharing a missing
    // key become one eval plus one hit, exactly like the serial engine).
    struct SuffixJob {
      AnalysisSession::SuffixKey key;  // memo only
      EnvelopePtr entry_env;
      Seconds h_r;
      const servers::AccessMedium* medium = nullptr;
      AnalysisSession::SuffixEntry result;
    };
    std::vector<SuffixJob> jobs;
    std::map<AnalysisSession::SuffixKey, std::size_t> job_of;
    std::vector<std::ptrdiff_t> conn_job(n, -1);
    std::vector<const AnalysisSession::SuffixEntry*> conn_hit(n, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      if (set[i].spec.src.ring == set[i].spec.dst.ring) continue;
      const Seconds h_r = set[i].alloc.h_r;
      const servers::AccessMedium& dst_medium =
          topology_->access_medium(set[i].spec.dst.ring);
      if (unusable_allocation(dst_medium, h_r)) {
        alive[i] = false;
        continue;
      }
      if (memo == nullptr) {
        conn_job[i] = static_cast<std::ptrdiff_t>(jobs.size());
        jobs.push_back({{}, envs[i], h_r, &dst_medium, {}});
        continue;
      }
      // The key folds the destination segment's medium digest so two flows
      // with the same entry envelope and H_R but different destination
      // media never share a suffix entry (the fingerprint contract: equal
      // key ⇒ bit-identical walk).
      const AnalysisSession::SuffixKey key{
          fp::combine(envs[i]->fingerprint(), dst_medium.config_digest()),
          fp::of_double(h_r.value())};
      const AnalysisSession::SuffixEntry* found = memo->suffixes_.lookup(key);
      if (found == nullptr && read_base != nullptr) {
        found = read_base->suffixes_.peek(key);
      }
      if (found != nullptr) {
        ++memo->stats_.suffix_hits;
        conn_hit[i] = found;
        continue;
      }
      const auto [jit, inserted] = job_of.try_emplace(key, jobs.size());
      if (inserted) {
        jobs.push_back({key, envs[i], h_r, &dst_medium, {}});
        ++memo->stats_.suffix_evals;
      } else {
        ++memo->stats_.suffix_hits;
      }
      conn_job[i] = static_cast<std::ptrdiff_t>(jit->second);
    }

    // Parallel compute of the deduplicated walks (each a pure function of
    // its entry envelope and H_R).
    HETNET_OBS_SPAN_NAMED(suffix_span, "analyzer.suffixes", "analysis");
    suffix_span.arg("jobs", std::int64_t(jobs.size()));
    util::parallel_for(jobs.size(), threads, [&](std::size_t k) {
      jobs[k].result = walk_receive_suffix(jobs[k].entry_env, jobs[k].h_r,
                                           *jobs[k].medium, nullptr);
    });

    // Serial apply: record the new entries (first-occurrence order), then
    // replay each connection's per-stage additions in connection order —
    // bit-identical to the cold walk's accumulation.
    if (memo != nullptr) {
      for (const SuffixJob& job : jobs) {
        memo->suffixes_.emplace(job.key, job.result);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const AnalysisSession::SuffixEntry* walk =
          conn_hit[i] != nullptr
              ? conn_hit[i]
              : (conn_job[i] >= 0 ? &jobs[static_cast<std::size_t>(
                                        conn_job[i])].result
                                  : nullptr);
      if (walk == nullptr) continue;
      if (!walk->finite) {
        alive[i] = false;
        continue;
      }
      for (const Seconds d : walk->stage_delays) delays[i] += d;
      envs[i] = walk->final_env;
    }
  }

  // A connection with no finite bound poisons everything it shares a port
  // with: its envelope past the failing server is undefined, so bounds that
  // consumed it are not trustworthy. Iterate the taint to a fixed point.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [port, users] : port_users) {
      bool tainted = false;
      for (std::size_t i : users) {
        if (!alive[i]) tainted = true;
      }
      if (!tainted) continue;
      for (std::size_t i : users) {
        if (alive[i]) {
          alive[i] = false;
          changed = true;
        }
      }
    }
  }

  std::vector<Seconds> out(n, kUnbounded);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i]) {
      out[i] = delays[i];
      if (det != nullptr) {
        (*det)[i].total_delay = delays[i];
        (*det)[i].final_output = envs[i];
      }
    }
  }
  return out;
}

AnalysisSession::SuffixEntry DelayAnalyzer::walk_receive_suffix(
    const EnvelopePtr& entry, Seconds h_r,
    const servers::AccessMedium& medium,
    std::vector<ChainStage>* stages) const {
  const std::vector<ServerPtr> path = medium.receive_stages(h_r, config_);
  AnalysisSession::SuffixEntry out;
  EnvelopePtr env = entry;
  for (const ServerPtr& s : path) {
    Seconds stage_delay;
    if (!run_stage(*s, env, stage_delay, stages)) return out;
    out.stage_delays.push_back(stage_delay);
  }
  out.finite = true;
  out.final_env = std::move(env);
  return out;
}

std::vector<SendPrefix> DelayAnalyzer::compute_prefixes(
    const std::vector<ConnectionInstance>& set, std::ptrdiff_t stage_index,
    std::vector<ChainStage>* stages) const {
  std::vector<SendPrefix> prefixes(set.size());
  if (stage_index < 0) {
    // Each prefix is private to its connection — embarrassingly parallel,
    // each worker writing its own slot.
    HETNET_OBS_SPAN_NAMED(prefix_span, "analyzer.prefixes", "analysis");
    prefix_span.arg("connections", std::int64_t(set.size()));
    util::parallel_for(set.size(), config_.threads, [&](std::size_t i) {
      prefixes[i] = send_prefix(set[i].spec, set[i].alloc.h_s);
    });
  } else {
    for (std::size_t i = 0; i < set.size(); ++i) {
      const ConnectionInstance& inst = set[i];
      prefixes[i] =
          static_cast<std::ptrdiff_t>(i) == stage_index
              ? prefix_with_stages(inst.spec, inst.alloc.h_s, stages)
              : send_prefix(inst.spec, inst.alloc.h_s);
    }
  }
  return prefixes;
}

std::vector<Seconds> DelayAnalyzer::complete(
    const std::vector<ConnectionInstance>& set,
    const std::vector<SendPrefix>& prefixes, AnalysisSession* session) const {
  return run(set, prefixes, nullptr, nullptr, session);
}

std::vector<Seconds> DelayAnalyzer::complete_speculative(
    const std::vector<ConnectionInstance>& set,
    const std::vector<SendPrefix>& prefixes, const AnalysisSession& base,
    AnalysisSession& overlay) const {
  return run(set, prefixes, nullptr, nullptr, &overlay, &base);
}

std::map<atm::PortId, DelayAnalyzer::PortReport> DelayAnalyzer::port_reports(
    const std::vector<ConnectionInstance>& set) const {
  std::map<atm::PortId, PortReport> ports;
  run(set, compute_prefixes(set), nullptr, &ports);
  return ports;
}

std::vector<Seconds> DelayAnalyzer::analyze(
    const std::vector<ConnectionInstance>& set) const {
  return run(set, compute_prefixes(set), nullptr);
}

std::optional<ChainAnalysis> DelayAnalyzer::breakdown(
    const std::vector<ConnectionInstance>& set, std::size_t index) const {
  HETNET_CHECK(index < set.size(), "breakdown index out of range");
  // The indexed connection's prefix is walked ONCE, recording its stages
  // up front (run() consumes precomputed prefixes, so the prefix stages
  // would otherwise be absent from `details`).
  ChainAnalysis full;
  const std::vector<SendPrefix> prefixes = compute_prefixes(
      set, static_cast<std::ptrdiff_t>(index), &full.stages);
  std::vector<ChainAnalysis> details;
  const auto delays = run(set, prefixes, &details);
  if (delays[index] == kUnbounded) return std::nullopt;
  HETNET_CHECK(prefixes[index].finite,
               "prefix must be finite when the bound is");
  for (auto& stage : details[index].stages) {
    full.stages.push_back(std::move(stage));
  }
  full.total_delay = delays[index];
  full.final_output = details[index].final_output;
  return full;
}

}  // namespace hetnet::core
