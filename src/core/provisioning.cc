#include "src/core/provisioning.h"

#include <sstream>

#include "src/util/table.h"

namespace hetnet::core {

ProvisioningReport provisioning_report(const AdmissionController& cac) {
  ProvisioningReport report;

  std::vector<ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }

  // Rings straight from the ledgers.
  for (int r = 0; r < cac.topology().num_rings(); ++r) {
    const auto& ledger = cac.ledger(r);
    report.rings.push_back(
        {r, ledger.allocated(), ledger.capacity(), ledger.reservations()});
  }

  // Ports from the joint analysis.
  for (const auto& [port, pr] : cac.analyzer().port_reports(set)) {
    report.ports.push_back({port, pr.flows, pr.delay, pr.backlog});
  }

  // Per-connection private stages.
  const auto delays = cac.analyzer().analyze(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    ConnectionProvision cp;
    cp.id = set[i].spec.id;
    cp.worst_case_delay = delays[i];
    cp.deadline = set[i].spec.deadline;
    const auto breakdown = cac.analyzer().breakdown(set, i);
    if (breakdown.has_value()) {
      for (const auto& stage : breakdown->stages) {
        if (stage.server_name.rfind("ATM.Port", 0) == 0) continue;
        cp.private_buffers += stage.analysis.buffer_required;
      }
    }
    report.connections.push_back(cp);
  }
  return report;
}

std::string ProvisioningReport::to_string() const {
  std::ostringstream os;

  TableWriter ring_table({"ring", "allocated (ms)", "capacity (ms)",
                          "reservations"});
  for (const auto& r : rings) {
    ring_table.add_row({std::to_string(r.ring),
                        TableWriter::fmt(r.allocated.value() * 1e3, 3),
                        TableWriter::fmt(r.capacity.value() * 1e3, 3),
                        std::to_string(r.reservations)});
  }
  os << "synchronous bandwidth (Ω per ring):\n" << ring_table.to_ascii();

  TableWriter port_table({"port", "flows", "delay bound (ms)",
                          "buffer (kbit)"});
  for (const auto& p : ports) {
    port_table.add_row({std::to_string(p.port), std::to_string(p.flows),
                        TableWriter::fmt(p.delay_bound.value() * 1e3, 3),
                        TableWriter::fmt(p.buffer_required.value() / 1e3, 1)});
  }
  os << "\nATM output ports:\n" << port_table.to_ascii();

  TableWriter conn_table({"connection", "bound (ms)", "deadline (ms)",
                          "private buffers (kbit)"});
  for (const auto& c : connections) {
    conn_table.add_row({std::to_string(c.id),
                        TableWriter::fmt(c.worst_case_delay.value() * 1e3, 2),
                        TableWriter::fmt(c.deadline.value() * 1e3, 0),
                        TableWriter::fmt(c.private_buffers.value() / 1e3, 1)});
  }
  os << "\nconnections:\n" << conn_table.to_ascii();
  return os.str();
}

}  // namespace hetnet::core
