// Feasible-region geometry (Section 5.2, Theorems 3–4, Figure 6).
//
// For a requesting connection, the feasible region is the set of
// (H_S, H_R) allocations under which every deadline — the new connection's
// and every existing one's — holds. Theorem 3 states each single-connection
// region R_{f,g} is closed and convex; Theorem 4 that the feasible region is
// their intersection, a rectangle whose lower-left boundary is replaced by a
// concave curve (Figure 6).
//
// These helpers sample the region on a grid (for the Figure-6 bench and for
// property tests that check the claimed convexity empirically).
#pragma once

#include <string>
#include <vector>

#include "src/core/cac.h"

namespace hetnet::core {

struct RegionSample {
  Seconds h_s;
  Seconds h_r;
  bool feasible = false;
  // The requesting connection's worst-case bound at this allocation
  // (kUnbounded when no finite bound exists).
  Seconds delay;
};

struct RegionGrid {
  int steps_s = 0;  // samples along H_S
  int steps_r = 0;  // samples along H_R
  Seconds h_s_max;
  Seconds h_r_max;
  // Row-major: sample (i, j) = samples[j * steps_s + i] has
  // h_s = (i+1)/steps_s · h_s_max, h_r = (j+1)/steps_r · h_r_max.
  std::vector<RegionSample> samples;

  const RegionSample& at(int i, int j) const {
    return samples[static_cast<std::size_t>(j * steps_s + i)];
  }
};

// Samples feasibility of `spec` on a steps_s × steps_r grid spanning
// (0, H_S^max_avai] × (0, H_R^max_avai] against the controller's current
// active set.
RegionGrid sample_feasible_region(const AdmissionController& cac,
                                  const net::ConnectionSpec& spec,
                                  int steps_s, int steps_r);

// Empirical convexity: for every pair of feasible grid points whose exact
// midpoint is also a grid point, the midpoint must be feasible. Returns the
// number of violating midpoints — infeasible grid points witnessed by at
// least one such pair, each counted once (0 ⟺ consistent with Theorems
// 3–4). Enumerates midpoints directly with early exit on the first
// witness, rather than scanning all pairs of feasible points.
int count_convexity_violations(const RegionGrid& grid);

// ASCII map of the region: '#' feasible, '.' infeasible, H_S rightward,
// H_R upward (the orientation of Figure 6).
std::string render_region(const RegionGrid& grid);

}  // namespace hetnet::core
