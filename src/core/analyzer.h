// End-to-end worst-case delay analysis over an ABHN (Section 4, eq. 7).
//
// A connection's path decomposes into (with the paper's default media)
//
//   FDDI_S : host MAC (Theorem 1, allocation H_S) + ring delay line
//   ID_S   : input port + frame switch + frame→cell conversion (Theorem 2)
//            + the device's ATM output port (FIFO mux)
//   ATM    : per traversed switch, fabric latency + output port (FIFO mux)
//            + link propagation
//   ID_R   : input port + cell→frame conversion + frame switch
//   FDDI_R : the interface device's MAC (Theorem 1, allocation H_R)
//            + ring delay line to the destination host
//
// The analyzer does not hard-code that chain: the private send prefix and
// receive suffix come from each segment's resolved AccessMedium
// (src/servers/registry.h) — the topology's hop sequence decides whether a
// segment is a timed-token ring, a TDMA Ethernet, or anything else
// registered — and the backbone medium labels the shared FIFO ports. Only
// the port-coupling walk below is the analyzer's own.
//
// The FIFO ports COUPLE connections: a port's delay bound depends on the
// aggregate envelope of everything multiplexed there, so the end-to-end
// bounds of the whole connection set must be computed jointly. The analyzer
// walks the shared ports in topological order (feed-forward routing),
// propagating each connection's envelope, and returns every connection's
// end-to-end bound.
//
// Results for OTHER connections are meaningful only when all connections
// have finite bounds; an unstable connection's traffic cannot be described
// by a finite envelope downstream of the instability, so the analyzer
// reports +infinity for everything sharing a port with it. The CAC only
// accepts allocations where every bound is finite, so this conservatism
// never admits a violating configuration.
//
// Parallelism (AnalysisConfig::threads > 1): the topological walk is
// level-synchronous — ports with no unprocessed predecessor form a wave, and
// ports in the same wave are bounded concurrently. Two same-wave ports never
// share a live connection (a connection's route induces a precedence chain
// over its ports, so two ports of one route are never in the same wave),
// which makes the per-wave work embarrassingly parallel. All memo lookups,
// stats counting, and state application happen in serial pre-/post-passes in
// a fixed order, so results are BIT-IDENTICAL for every thread count
// (pinned by tests/core/parallel_equivalence_test.cc; see DESIGN.md §8).
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "src/core/session.h"
#include "src/net/connection.h"
#include "src/net/topology.h"
#include "src/servers/chain.h"
#include "src/servers/server.h"

namespace hetnet::core {

// A connection together with the (possibly hypothetical) allocation to
// analyze it under.
struct ConnectionInstance {
  net::ConnectionSpec spec;
  net::Allocation alloc;
};

inline constexpr Seconds kUnbounded = Seconds::infinity();

// The send-side private prefix of one connection (host MAC through
// frame→cell conversion): its delay and the envelope entering the
// interface device's output port. Independent of every other connection,
// so callers may cache it across feasibility probes that keep H_S fixed.
struct SendPrefix {
  bool finite = false;
  Seconds delay;
  EnvelopePtr at_uplink;  // set iff finite
};

class DelayAnalyzer {
 public:
  DelayAnalyzer(const net::AbhnTopology* topology,
                const AnalysisConfig& config = {});

  // Computes the private send-side prefix for `spec` under allocation h_s.
  SendPrefix send_prefix(const net::ConnectionSpec& spec, Seconds h_s) const;

  // Jointly computes the end-to-end worst-case delay bound of every
  // instance (kUnbounded where no finite bound exists). `prefixes` must be
  // aligned with `set` and produced by send_prefix() for the same specs and
  // allocations. When `session` is non-null, per-port bounds and receive
  // suffixes are served from (and recorded into) its memo tables — results
  // are bit-identical to the cold recompute, only faster when consecutive
  // calls share structure (see src/core/session.h).
  std::vector<Seconds> complete(const std::vector<ConnectionInstance>& set,
                                const std::vector<SendPrefix>& prefixes,
                                AnalysisSession* session = nullptr) const;

  // complete() for a SPECULATIVE probe running concurrently with others:
  // memo lookups consult `overlay` first and then the shared `base`
  // (read-only — safe to share across concurrent speculative runs), and all
  // new entries are recorded into the private `overlay`. Once the batch
  // settles, absorb() the overlays into the base in a deterministic order.
  // Results are bit-identical to complete(set, prefixes, &base_after_warmup)
  // by the fingerprint contract (equal key ⇒ bit-identical value).
  std::vector<Seconds> complete_speculative(
      const std::vector<ConnectionInstance>& set,
      const std::vector<SendPrefix>& prefixes, const AnalysisSession& base,
      AnalysisSession& overlay) const;

  // Convenience: send_prefix for each instance, then complete().
  std::vector<Seconds> analyze(const std::vector<ConnectionInstance>& set) const;

  // Full per-stage breakdown for the instance at `index` within the jointly
  // analyzed `set` (for delay-budget reporting and buffer provisioning).
  // Returns nullopt if that instance has no finite bound.
  std::optional<ChainAnalysis> breakdown(
      const std::vector<ConnectionInstance>& set, std::size_t index) const;

  // Port-wide bounds of every ATM output port the set touches: the FIFO
  // delay bound (shared by all flows through the port) and the backlog a
  // deployment must buffer there. Ports whose aggregate has no finite bound
  // are absent from the map.
  struct PortReport {
    Seconds delay;
    Bits backlog;
    int flows = 0;
  };
  std::map<atm::PortId, PortReport> port_reports(
      const std::vector<ConnectionInstance>& set) const;

  const AnalysisConfig& config() const { return config_; }

 private:
  SendPrefix prefix_with_stages(const net::ConnectionSpec& spec, Seconds h_s,
                                std::vector<ChainStage>* stages) const;
  // send_prefix() for every instance; the instance at `stage_index` (if any)
  // additionally records its per-stage breakdown into `stages`.
  std::vector<SendPrefix> compute_prefixes(
      const std::vector<ConnectionInstance>& set,
      std::ptrdiff_t stage_index = -1,
      std::vector<ChainStage>* stages = nullptr) const;
  // Walks the private receive-side suffix (ID_R + the destination segment's
  // MAC and delay line, per `medium`) for a flow whose envelope leaving the
  // backbone is `entry`, under allocation h_r.
  AnalysisSession::SuffixEntry walk_receive_suffix(
      const EnvelopePtr& entry, Seconds h_r,
      const servers::AccessMedium& medium,
      std::vector<ChainStage>* stages) const;
  // `session` is the writable memo (hits recorded, misses inserted);
  // `read_base` is an optional ADDITIONAL read-only memo consulted when a
  // key is absent from `session` — used by complete_speculative() to share
  // a base session across concurrent probes without mutating it.
  std::vector<Seconds> run(const std::vector<ConnectionInstance>& set,
                           const std::vector<SendPrefix>& prefixes,
                           std::vector<ChainAnalysis>* details,
                           std::map<atm::PortId, PortReport>* ports = nullptr,
                           AnalysisSession* session = nullptr,
                           const AnalysisSession* read_base = nullptr) const;

  const net::AbhnTopology* topology_;
  AnalysisConfig config_;
};

}  // namespace hetnet::core
