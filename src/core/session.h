// Incremental evaluation state for the admission-analysis hot path.
//
// The Section-5 CAC probes ~2×bisection_iters+3 candidate allocations per
// admission request, and each probe re-runs the joint FDDI→ATM→FDDI analysis
// of DelayAnalyzer::run(). Between two probes only the CANDIDATE's
// allocation differs, so only the ports on its backbone route (and whatever
// is downstream of them) can produce different bounds — every other port,
// and the receive-side suffix of every connection not crossing a changed
// port, is recomputed to the bit-identical result.
//
// AnalysisSession memoizes exactly those two computations:
//
//   * per-port FIFO bounds + per-flow output envelopes, keyed by
//     (port, [fingerprints of the live input envelopes in multiplex order]);
//   * per-connection receive-side suffixes (ID_R + FDDI_R), keyed by
//     (fingerprint of the envelope leaving the last backbone port, H_R).
//
// Keys are the structural envelope fingerprints of src/traffic/fingerprint.h:
// equal fingerprint ⇒ bit-identical envelope, so a memo hit returns exactly
// what the cold recompute would have produced (the soundness tests in
// tests/core/incremental_test.cc pin this bit-for-bit). Entries never go
// stale — a released connection simply stops contributing its fingerprints —
// so the session needs no invalidation protocol for CORRECTNESS, only a
// size bound; release_source() below is a cost optimization that reclaims
// entries known to be unreachable.
//
// Eviction model: every table is a SegmentedMap — two generations (hot and
// cold). Inserts land in hot; a lookup that hits cold promotes the entry
// back into hot (std::map node splicing, so element addresses never move).
// When hot outgrows half the configured capacity the generations rotate:
// the old cold generation — entries not touched for a full generation — is
// dropped and hot becomes the new cold. A long-lived session therefore
// sheds only its stale half at a time and stays warm across the rotation,
// instead of oscillating between warm and stone-cold the way the previous
// wholesale trim() did (the admissiond p99-cliff fix; see DESIGN.md §13).
// Eviction timing depends only on the deterministic insert/lookup sequence,
// and cache content can only change COST, never values (equal key ⇒
// bit-identical value), so decisions are unaffected at any capacity.
//
// Concurrency model: the session itself is NOT internally synchronized.
// A single run() mutates it only from the analyzer's serial memo phases
// (the parallel workers touch per-entry state the serial pre-pass handed
// them). For the CAC's speculative probe batching — several run()s in
// flight at once — the base session is shared READ-ONLY and each
// concurrent run records its new entries into a private overlay session
// (DelayAnalyzer::complete_speculative); the overlays are merged back with
// absorb() in a deterministic order afterwards. Shared read-only access
// uses the const lookup paths (SegmentedMap::peek), which never promote —
// promotion is a mutation. Because equal keys always map to bit-identical
// values, any merge order yields a semantically identical cache; only the
// eval/hit counters can overcount under speculation (an entry may be
// computed by several overlays at once), so treat Stats as diagnostics,
// exact only for serial configurations.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/atm/backbone.h"
#include "src/traffic/envelope.h"
#include "src/util/units.h"

namespace hetnet::core {

class DelayAnalyzer;

// Two-generation (hot/cold) ordered map used by the AnalysisSession tables.
// Semantics: keep-existing on key collision (colliding values are
// bit-identical under the fingerprint contract, so either copy is sound),
// promotion on mutable lookup, wholesale drop of the cold generation on
// rotation. Element addresses are stable across promotion and insertion
// (std::map nodes); only rotate() and clear() invalidate entry pointers.
template <typename K, typename V>
class SegmentedMap {
 public:
  // Mutable lookup: hot first, then cold; a cold hit is promoted into the
  // hot generation (node extract/insert — the element itself never moves).
  V* lookup(const K& key) {
    if (const auto it = hot_.find(key); it != hot_.end()) return &it->second;
    if (const auto it = cold_.find(key); it != cold_.end()) {
      const auto pos = hot_.insert(cold_.extract(it)).position;
      return &pos->second;
    }
    return nullptr;
  }

  // Const lookup, NO promotion — the only lookup allowed on a session that
  // is shared read-only across speculative runs.
  const V* peek(const K& key) const {
    if (const auto it = hot_.find(key); it != hot_.end()) return &it->second;
    if (const auto it = cold_.find(key); it != cold_.end()) return &it->second;
    return nullptr;
  }

  bool contains(const K& key) const { return peek(key) != nullptr; }

  // Inserts into the hot generation; keep-existing if the key is already
  // hot. A key resident only in cold can end up shadowed by a hot twin —
  // benign (bit-identical values), and the duplicate dies with the cold
  // generation on the next rotation.
  template <typename KK, typename VV>
  V& emplace(KK&& key, VV&& value) {
    return hot_.emplace(std::forward<KK>(key), std::forward<VV>(value))
        .first->second;
  }

  // Erases the key from both generations (keyed invalidation; e.g. a
  // released connection's compiled flat source). Returns entries removed.
  std::size_t erase(const K& key) {
    return hot_.erase(key) + cold_.erase(key);
  }

  // Predicate-driven invalidation across both generations (e.g. every
  // compiled prefix of a released source, whatever its allocation key).
  // Ordered iteration — deterministic. Returns entries removed.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t removed = 0;
    for (auto* segment : {&hot_, &cold_}) {
      for (auto it = segment->begin(); it != segment->end();) {
        if (pred(it->first)) {
          it = segment->erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
    }
    return removed;
  }

  // Generation rotation: when hot exceeds `hot_capacity`, drop the cold
  // generation and demote hot. Returns the number of entries evicted.
  std::size_t rotate_if_above(std::size_t hot_capacity) {
    if (hot_.size() <= hot_capacity) return 0;
    const std::size_t evicted = cold_.size();
    cold_ = std::move(hot_);
    hot_.clear();
    return evicted;
  }

  // Keep-existing merge of another segmented map's entries into the hot
  // generation (overlay absorption; deterministic given deterministic call
  // order).
  void merge_from(SegmentedMap& other) {
    hot_.merge(other.hot_);
    hot_.merge(other.cold_);
  }

  std::size_t size() const { return hot_.size() + cold_.size(); }
  void clear() {
    hot_.clear();
    cold_.clear();
  }

 private:
  std::map<K, V> hot_;
  std::map<K, V> cold_;
};

class AnalysisSession {
 public:
  struct Stats {
    std::uint64_t port_evals = 0;    // FIFO ports bounded from scratch
    std::uint64_t port_hits = 0;     // ports served from the memo
    std::uint64_t suffix_evals = 0;  // receive suffixes walked from scratch
    std::uint64_t suffix_hits = 0;   // suffixes served from the memo
    std::uint64_t decision_hits = 0;   // joint delay vectors served whole
    std::uint64_t decision_evals = 0;  // joint delay vectors stored fresh
    std::uint64_t flat_hits = 0;       // flattened sources served from cache
    std::uint64_t flat_compiles = 0;   // flattened sources compiled fresh
    std::uint64_t evictions = 0;       // entries dropped by a generation
                                       // rotation (all four tables)
    std::uint64_t invalidations = 0;   // entries erased by release_source()
  };

  const Stats& stats() const { return stats_; }

  // --- Tier-B decision memo (src/core/cac.cc) -----------------------------
  //
  // A whole joint-analysis result, keyed by a digest over the ordered
  // per-instance tuples (src, dst, H_R, send-prefix delay/finiteness, and
  // the fingerprint of the envelope entering the uplink). DelayAnalyzer::
  // run() depends on exactly those inputs (spec.id and the deadline are
  // applied OUTSIDE the analysis), so a hit replays the bit-identical delay
  // vector a fresh run would produce. Unlike the port/suffix tables the key
  // is a single folded hash, not the full tuple sequence — the collision
  // channel is the same 64-bit fingerprint layer the other tables already
  // stand on. Returns nullptr on miss; stored vectors disappear only when
  // their generation ages out (trim()) or on clear().
  const std::vector<Seconds>* decision_lookup(std::uint64_t digest);
  void decision_store(std::uint64_t digest, std::vector<Seconds> delays);
  // Membership peek that leaves the hit counters untouched — used to order
  // the tiers (a memoized exact vector beats running the screen at all).
  bool decision_contains(std::uint64_t digest) const {
    return decisions_.contains(digest);
  }

  // --- Tier-A FlatCache (src/core/cac.cc) ---------------------------------
  //
  // Flattened admit-safe source envelopes (src/traffic/flat.h), compiled
  // once per source fingerprint and shared by every later screen that sees
  // the same source. Returning the SAME object on a hit keeps the screen
  // session's own memo keys stable (the flat envelope's fingerprint is
  // structural, but pointer-stable sharing avoids even the recompaction).
  EnvelopePtr flat_lookup(std::uint64_t source_fp);
  void flat_store(std::uint64_t source_fp, EnvelopePtr flat);

  // Keyed invalidation on RELEASE: the caller has established that no
  // remaining active connection uses a source with this fingerprint, so its
  // compiled flat twin can be reclaimed now instead of waiting out two
  // generation rotations. Purely a cost/space action — lookups would never
  // return a stale value either way (keys are structural fingerprints).
  void release_source(std::uint64_t source_fp);

  // Drops all memoized results (keeps the counters).
  void clear();

  // Merges an overlay session produced by a speculative run into this one:
  // entries this session already has win (their values are bit-identical by
  // the fingerprint contract anyway), the overlay's counters are added, and
  // the size bound is re-applied.
  void absorb(AnalysisSession&& overlay);

  // Capacity of each table (entries). When a table's hot generation exceeds
  // half of this, the generations rotate and the stale half is dropped.
  // Callers may resize at any serial point; admissiond exposes this as a
  // soak knob (CacConfig::session_max_entries).
  static constexpr std::size_t kDefaultMaxEntries = 1 << 16;
  void set_capacity(std::size_t max_entries);
  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    return ports_.size() + suffixes_.size() + decisions_.size() +
           flats_.size();
  }

 private:
  friend class DelayAnalyzer;

  struct PortEntry {
    bool bounded = false;
    Seconds delay;  // port-wide FIFO bound incl. non-preemption
    Bits backlog;
    // Input-envelope fingerprint → that flow's envelope at the port exit.
    // Stored (not re-derived) so downstream stages see the SAME objects on a
    // hit, keeping their own memo keys stable across probes.
    std::vector<std::pair<std::uint64_t, EnvelopePtr>> outputs;
  };

  struct SuffixEntry {
    bool finite = false;
    // Per-stage delays, re-applied in order on a hit: replaying the exact
    // addition sequence keeps accumulated delays bit-identical to the cold
    // walk (floating-point addition is not associative).
    std::vector<Seconds> stage_delays;
    EnvelopePtr final_env;
  };

  // Exact keys (no hash folding): lookups compare the full fingerprint
  // sequence, so the only collision channel is the fingerprint layer itself.
  using PortKey = std::pair<atm::PortId, std::vector<std::uint64_t>>;
  using SuffixKey = std::pair<std::uint64_t, std::uint64_t>;  // env fp, H_R

  // Applies the generation bound to every table (rotating whichever hot
  // halves outgrew capacity_/2) and tallies evictions. Called from the
  // serial points only: run() entry, the store paths, and absorb().
  void trim();

  std::size_t capacity_ = kDefaultMaxEntries;
  SegmentedMap<PortKey, PortEntry> ports_;
  SegmentedMap<SuffixKey, SuffixEntry> suffixes_;
  // Tier machinery (see the public accessors above): whole-run delay
  // vectors by instance-tuple digest, and flattened screen sources by
  // source fingerprint.
  SegmentedMap<std::uint64_t, std::vector<Seconds>> decisions_;
  SegmentedMap<std::uint64_t, EnvelopePtr> flats_;
  Stats stats_;
};

}  // namespace hetnet::core
