// Incremental evaluation state for the admission-analysis hot path.
//
// The Section-5 CAC probes ~2×bisection_iters+3 candidate allocations per
// admission request, and each probe re-runs the joint FDDI→ATM→FDDI analysis
// of DelayAnalyzer::run(). Between two probes only the CANDIDATE's
// allocation differs, so only the ports on its backbone route (and whatever
// is downstream of them) can produce different bounds — every other port,
// and the receive-side suffix of every connection not crossing a changed
// port, is recomputed to the bit-identical result.
//
// AnalysisSession memoizes exactly those two computations:
//
//   * per-port FIFO bounds + per-flow output envelopes, keyed by
//     (port, [fingerprints of the live input envelopes in multiplex order]);
//   * per-connection receive-side suffixes (ID_R + FDDI_R), keyed by
//     (fingerprint of the envelope leaving the last backbone port, H_R).
//
// Keys are the structural envelope fingerprints of src/traffic/fingerprint.h:
// equal fingerprint ⇒ bit-identical envelope, so a memo hit returns exactly
// what the cold recompute would have produced (the soundness tests in
// tests/core/incremental_test.cc pin this bit-for-bit). Entries never go
// stale — a released connection simply stops contributing its fingerprints —
// so the session needs no invalidation protocol, only a size bound.
//
// Concurrency model: the session itself is NOT internally synchronized.
// A single run() mutates it only from the analyzer's serial memo phases
// (the parallel workers touch per-entry state the serial pre-pass handed
// them). For the CAC's speculative probe batching — several run()s in
// flight at once — the base session is shared READ-ONLY and each
// concurrent run records its new entries into a private overlay session
// (DelayAnalyzer::complete_speculative); the overlays are merged back with
// absorb() in a deterministic order afterwards. Because equal keys always
// map to bit-identical values, any merge order yields a semantically
// identical cache; only the eval/hit counters can overcount under
// speculation (an entry may be computed by several overlays at once), so
// treat Stats as diagnostics, exact only for serial configurations.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/atm/backbone.h"
#include "src/traffic/envelope.h"
#include "src/util/units.h"

namespace hetnet::core {

class DelayAnalyzer;

class AnalysisSession {
 public:
  struct Stats {
    std::uint64_t port_evals = 0;    // FIFO ports bounded from scratch
    std::uint64_t port_hits = 0;     // ports served from the memo
    std::uint64_t suffix_evals = 0;  // receive suffixes walked from scratch
    std::uint64_t suffix_hits = 0;   // suffixes served from the memo
    std::uint64_t decision_hits = 0;   // joint delay vectors served whole
    std::uint64_t decision_evals = 0;  // joint delay vectors stored fresh
    std::uint64_t flat_hits = 0;       // flattened sources served from cache
    std::uint64_t flat_compiles = 0;   // flattened sources compiled fresh
  };

  const Stats& stats() const { return stats_; }

  // --- Tier-B decision memo (src/core/cac.cc) -----------------------------
  //
  // A whole joint-analysis result, keyed by a digest over the ordered
  // per-instance tuples (src, dst, H_R, send-prefix delay/finiteness, and
  // the fingerprint of the envelope entering the uplink). DelayAnalyzer::
  // run() depends on exactly those inputs (spec.id and the deadline are
  // applied OUTSIDE the analysis), so a hit replays the bit-identical delay
  // vector a fresh run would produce. Unlike the port/suffix tables the key
  // is a single folded hash, not the full tuple sequence — the collision
  // channel is the same 64-bit fingerprint layer the other tables already
  // stand on. Returns nullptr on miss; stored vectors are invalidated only
  // by the wholesale trim()/clear(), like every other memo here.
  const std::vector<Seconds>* decision_lookup(std::uint64_t digest);
  void decision_store(std::uint64_t digest, std::vector<Seconds> delays);
  // Membership peek that leaves the hit counters untouched — used to order
  // the tiers (a memoized exact vector beats running the screen at all).
  bool decision_contains(std::uint64_t digest) const {
    return decisions_.contains(digest);
  }

  // --- Tier-A FlatCache (src/core/cac.cc) ---------------------------------
  //
  // Flattened admit-safe source envelopes (src/traffic/flat.h), compiled
  // once per source fingerprint and shared by every later screen that sees
  // the same source. Returning the SAME object on a hit keeps the screen
  // session's own memo keys stable (the flat envelope's fingerprint is
  // structural, but pointer-stable sharing avoids even the recompaction).
  EnvelopePtr flat_lookup(std::uint64_t source_fp);
  void flat_store(std::uint64_t source_fp, EnvelopePtr flat);

  // Drops all memoized results (keeps the counters).
  void clear();

  // Merges an overlay session produced by a speculative run into this one:
  // entries this session already has win (their values are bit-identical by
  // the fingerprint contract anyway), the overlay's counters are added, and
  // the size bound is re-applied.
  void absorb(AnalysisSession&& overlay);

  std::size_t size() const {
    return ports_.size() + suffixes_.size() + decisions_.size() +
           flats_.size();
  }

 private:
  friend class DelayAnalyzer;

  // Backstop against unbounded growth under endless churn: when either
  // table crosses this many entries it is dropped wholesale (correctness is
  // unaffected — the memo is a pure cache).
  static constexpr std::size_t kMaxEntries = 1 << 16;

  struct PortEntry {
    bool bounded = false;
    Seconds delay;  // port-wide FIFO bound incl. non-preemption
    Bits backlog;
    // Input-envelope fingerprint → that flow's envelope at the port exit.
    // Stored (not re-derived) so downstream stages see the SAME objects on a
    // hit, keeping their own memo keys stable across probes.
    std::vector<std::pair<std::uint64_t, EnvelopePtr>> outputs;
  };

  struct SuffixEntry {
    bool finite = false;
    // Per-stage delays, re-applied in order on a hit: replaying the exact
    // addition sequence keeps accumulated delays bit-identical to the cold
    // walk (floating-point addition is not associative).
    std::vector<Seconds> stage_delays;
    EnvelopePtr final_env;
  };

  // Exact keys (no hash folding): lookups compare the full fingerprint
  // sequence, so the only collision channel is the fingerprint layer itself.
  using PortKey = std::pair<atm::PortId, std::vector<std::uint64_t>>;
  using SuffixKey = std::pair<std::uint64_t, std::uint64_t>;  // env fp, H_R

  void trim();

  std::map<PortKey, PortEntry> ports_;
  std::map<SuffixKey, SuffixEntry> suffixes_;
  // Tier machinery (see the public accessors above): whole-run delay
  // vectors by instance-tuple digest, and flattened screen sources by
  // source fingerprint.
  std::map<std::uint64_t, std::vector<Seconds>> decisions_;
  std::map<std::uint64_t, EnvelopePtr> flats_;
  Stats stats_;
};

}  // namespace hetnet::core
