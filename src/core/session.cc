#include "src/core/session.h"

namespace hetnet::core {

void AnalysisSession::clear() {
  ports_.clear();
  suffixes_.clear();
}

void AnalysisSession::trim() {
  if (ports_.size() > kMaxEntries) ports_.clear();
  if (suffixes_.size() > kMaxEntries) suffixes_.clear();
}

}  // namespace hetnet::core
