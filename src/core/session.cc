#include "src/core/session.h"

#include <utility>

#include "src/util/check.h"

namespace hetnet::core {

const std::vector<Seconds>* AnalysisSession::decision_lookup(
    std::uint64_t digest) {
  if (const std::vector<Seconds>* hit = decisions_.lookup(digest)) {
    ++stats_.decision_hits;
    return hit;
  }
  return nullptr;
}

void AnalysisSession::decision_store(std::uint64_t digest,
                                     std::vector<Seconds> delays) {
  ++stats_.decision_evals;
  decisions_.emplace(digest, std::move(delays));
  trim();
}

EnvelopePtr AnalysisSession::flat_lookup(std::uint64_t source_fp) {
  if (const EnvelopePtr* hit = flats_.lookup(source_fp)) {
    ++stats_.flat_hits;
    return *hit;
  }
  return nullptr;
}

void AnalysisSession::flat_store(std::uint64_t source_fp, EnvelopePtr flat) {
  ++stats_.flat_compiles;
  flats_.emplace(source_fp, std::move(flat));
  trim();
}

void AnalysisSession::release_source(std::uint64_t source_fp) {
  stats_.invalidations += flats_.erase(source_fp);
}

void AnalysisSession::clear() {
  ports_.clear();
  suffixes_.clear();
  decisions_.clear();
  flats_.clear();
}

void AnalysisSession::set_capacity(std::size_t max_entries) {
  HETNET_CHECK(max_entries >= 2, "session capacity must be at least 2");
  capacity_ = max_entries;
  trim();
}

void AnalysisSession::trim() {
  const std::size_t hot_cap = capacity_ / 2;
  stats_.evictions += ports_.rotate_if_above(hot_cap);
  stats_.evictions += suffixes_.rotate_if_above(hot_cap);
  stats_.evictions += decisions_.rotate_if_above(hot_cap);
  stats_.evictions += flats_.rotate_if_above(hot_cap);
}

void AnalysisSession::absorb(AnalysisSession&& overlay) {
  // merge_from() keeps the existing entry on key collision; colliding
  // values are bit-identical by the fingerprint contract, so either choice
  // is sound.
  ports_.merge_from(overlay.ports_);
  suffixes_.merge_from(overlay.suffixes_);
  decisions_.merge_from(overlay.decisions_);
  flats_.merge_from(overlay.flats_);
  stats_.port_evals += overlay.stats_.port_evals;
  stats_.port_hits += overlay.stats_.port_hits;
  stats_.suffix_evals += overlay.stats_.suffix_evals;
  stats_.suffix_hits += overlay.stats_.suffix_hits;
  stats_.decision_hits += overlay.stats_.decision_hits;
  stats_.decision_evals += overlay.stats_.decision_evals;
  stats_.flat_hits += overlay.stats_.flat_hits;
  stats_.flat_compiles += overlay.stats_.flat_compiles;
  stats_.evictions += overlay.stats_.evictions;
  stats_.invalidations += overlay.stats_.invalidations;
  trim();
}

}  // namespace hetnet::core
