#include "src/core/session.h"

#include <utility>

namespace hetnet::core {

const std::vector<Seconds>* AnalysisSession::decision_lookup(
    std::uint64_t digest) {
  const auto it = decisions_.find(digest);
  if (it == decisions_.end()) return nullptr;
  ++stats_.decision_hits;
  return &it->second;
}

void AnalysisSession::decision_store(std::uint64_t digest,
                                     std::vector<Seconds> delays) {
  ++stats_.decision_evals;
  decisions_.insert_or_assign(digest, std::move(delays));
  trim();
}

EnvelopePtr AnalysisSession::flat_lookup(std::uint64_t source_fp) {
  const auto it = flats_.find(source_fp);
  if (it == flats_.end()) return nullptr;
  ++stats_.flat_hits;
  return it->second;
}

void AnalysisSession::flat_store(std::uint64_t source_fp, EnvelopePtr flat) {
  ++stats_.flat_compiles;
  flats_.insert_or_assign(source_fp, std::move(flat));
  trim();
}

void AnalysisSession::clear() {
  ports_.clear();
  suffixes_.clear();
  decisions_.clear();
  flats_.clear();
}

void AnalysisSession::trim() {
  if (ports_.size() > kMaxEntries) ports_.clear();
  if (suffixes_.size() > kMaxEntries) suffixes_.clear();
  if (decisions_.size() > kMaxEntries) decisions_.clear();
  if (flats_.size() > kMaxEntries) flats_.clear();
}

void AnalysisSession::absorb(AnalysisSession&& overlay) {
  // merge() keeps the existing entry on key collision; colliding values are
  // bit-identical by the fingerprint contract, so either choice is sound.
  ports_.merge(overlay.ports_);
  suffixes_.merge(overlay.suffixes_);
  decisions_.merge(overlay.decisions_);
  flats_.merge(overlay.flats_);
  stats_.port_evals += overlay.stats_.port_evals;
  stats_.port_hits += overlay.stats_.port_hits;
  stats_.suffix_evals += overlay.stats_.suffix_evals;
  stats_.suffix_hits += overlay.stats_.suffix_hits;
  stats_.decision_hits += overlay.stats_.decision_hits;
  stats_.decision_evals += overlay.stats_.decision_evals;
  stats_.flat_hits += overlay.stats_.flat_hits;
  stats_.flat_compiles += overlay.stats_.flat_compiles;
  trim();
}

}  // namespace hetnet::core
