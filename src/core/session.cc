#include "src/core/session.h"

namespace hetnet::core {

void AnalysisSession::clear() {
  ports_.clear();
  suffixes_.clear();
}

void AnalysisSession::trim() {
  if (ports_.size() > kMaxEntries) ports_.clear();
  if (suffixes_.size() > kMaxEntries) suffixes_.clear();
}

void AnalysisSession::absorb(AnalysisSession&& overlay) {
  // merge() keeps the existing entry on key collision; colliding values are
  // bit-identical by the fingerprint contract, so either choice is sound.
  ports_.merge(overlay.ports_);
  suffixes_.merge(overlay.suffixes_);
  stats_.port_evals += overlay.stats_.port_evals;
  stats_.port_hits += overlay.stats_.port_hits;
  stats_.suffix_evals += overlay.stats_.suffix_evals;
  stats_.suffix_hits += overlay.stats_.suffix_hits;
  trim();
}

}  // namespace hetnet::core
