// Ablation — FIFO vs static-priority output ports.
//
// The paper's interface devices and switches multiplex FIFO, so best-effort
// traffic sharing a link inflates every real-time bound. A static-priority
// port isolates the real-time class completely (best-effort contributes
// only one cell of non-preemption). This bench sweeps the best-effort load
// sharing a port and prints the real-time delay bound under each
// discipline — the case for per-class queueing hardware in the
// ATM-backbone generation that followed the paper.
//
// Flags (key=value): rt_flows rho_mbps c2_kbits p1_ms p2_ms deadline_ms
// requests warmup seed lifetime_s iters eqtol seeds
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/servers/edf_mux.h"
#include "src/servers/priority_mux.h"
#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams w = bench::workload_from_flags(flags);
  const int rt_flows = static_cast<int>(flags.get("rt_flows", 6));
  flags.check_unknown();

  auto rt_source = [&] {
    return std::make_shared<DualPeriodicEnvelope>(w.c1, w.p1, w.c2, w.p2,
                                                  w.peak);
  };

  FifoMuxParams port;
  port.capacity = units::mbps(155) * 48.0 / 53.0;
  port.non_preemption = units::bytes(53) / units::mbps(155);
  port.cell_bits = units::bytes(48);

  std::vector<EnvelopePtr> rt_cross;
  for (int i = 0; i < rt_flows - 1; ++i) rt_cross.push_back(rt_source());
  const EnvelopePtr rt_aggregate = sum_envelopes(rt_cross);

  std::printf("# Ablation: FIFO vs static-priority port (%d real-time flows "
              "of %.1f Mb/s + best-effort)\n",
              rt_flows, val(sim::source_rate(w)) / 1e6);
  TableWriter table(
      {"BE load (Mb/s)", "BE burst (kbit)", "FIFO d (ms)", "priority d (ms)"});

  for (double be_mbps : {0.0, 20.0, 40.0, 60.0, 80.0}) {
    for (double be_burst_kbit : {50.0, 400.0}) {
      // FIFO: best-effort shares the queue — its envelope joins the sum.
      std::vector<EnvelopePtr> fifo_cross = rt_cross;
      if (be_mbps > 0) {
        fifo_cross.push_back(std::make_shared<LeakyBucketEnvelope>(
            units::kbits(be_burst_kbit), units::mbps(be_mbps)));
      }
      const FifoMuxServer fifo("fifo", port, sum_envelopes(fifo_cross));
      const auto d_fifo = fifo.queueing_delay(rt_source());

      // Priority: best-effort never delays real-time beyond one cell.
      const PriorityMuxServer prio("priority", port, rt_aggregate);
      const auto d_prio = prio.queueing_delay(rt_source());

      table.add_row(
          {TableWriter::fmt(be_mbps, 0), TableWriter::fmt(be_burst_kbit, 0),
           d_fifo.has_value() ? TableWriter::fmt(val(d_fifo.value()) * 1e3, 3)
                              : "(unbounded)",
           d_prio.has_value() ? TableWriter::fmt(val(d_prio.value()) * 1e3, 3)
                              : "(unbounded)"});
      if (be_mbps == 0.0) break;  // burst size is moot with no BE traffic
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\n(priority-port real-time bounds are independent of the "
              "best-effort load by construction)\n");

  // EDF goes further: per-flow heterogeneous promises at one port. A
  // 1 Mb/s control flow gets a sub-millisecond bound while the bursty video
  // flows keep loose ones — FIFO would force the aggregate bound on all.
  const auto control =
      std::make_shared<LeakyBucketEnvelope>(units::kbits(5), units::mbps(1));
  std::vector<EdfFlow> video_flows;
  for (int i = 0; i < rt_flows; ++i) {
    video_flows.push_back({rt_source(), units::ms(10)});
  }
  std::printf("\n# EDF: per-flow local deadlines at one port\n");
  TableWriter edf_table({"control deadline (us)", "schedulable"});
  for (double d_us : {2000.0, 500.0, 100.0, 20.0, 5.0}) {
    const EdfMuxServer edf("edf", port.capacity, port.non_preemption,
                           port.cell_bits,
                           {control, units::us(d_us)}, video_flows);
    edf_table.add_row({TableWriter::fmt(d_us, 0),
                       edf.schedulable() ? "yes" : "no"});
  }
  std::printf("%s", edf_table.to_ascii().c_str());
  {
    FifoMuxParams fp = port;
    std::vector<EnvelopePtr> agg;
    for (const auto& f : video_flows) agg.push_back(f.envelope);
    const FifoMuxServer fifo("fifo", fp, sum_envelopes(agg));
    const auto d = fifo.queueing_delay(control);
    if (d.has_value()) {
      std::printf("(FIFO would give the control flow %.0f us)\n",
                  val(*d) * 1e6);
    }
  }
  return 0;
}
