// Validation — analytic worst-case bounds vs packet-level simulation.
//
// Admits a set of connections through the CAC, replays the admitted set in
// the packet-level discrete-event simulator (timed-token rings, interface
// devices, ATM switches), and compares every connection's simulated
// mean/max message delay against its analytic worst-case bound. The bound
// must dominate the simulated maximum for every connection (the soundness
// property all of Section 4 exists to provide); the max/bound ratio shows
// how much of the bound is pessimism.
//
// Flags (key=value): conns duration_s seed aligned rho_mbps c2_kbits p1_ms
// p2_ms deadline_ms requests warmup lifetime_s iters eqtol beta async_fill
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/sim/packet_sim.h"
#include "src/traffic/sources.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams w = bench::workload_from_flags(flags);
  core::CacConfig cfg = bench::cac_from_flags(flags, flags.get("beta", 0.5));
  const int want = static_cast<int>(flags.get("conns", 6));
  const double duration = flags.get("duration_s", 5.0);
  const bool aligned = flags.get("aligned", 0.0) != 0.0;
  const double async_fill = flags.get("async_fill", 0.0);
  flags.check_unknown();

  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController cac(&topo, cfg);

  // Admit up to `want` connections spread over the rings.
  int admitted = 0;
  for (int i = 0; i < want && admitted < want; ++i) {
    net::ConnectionSpec spec;
    spec.id = static_cast<net::ConnectionId>(i + 1);
    spec.src = {i % 3, (i / 3) % 4};
    spec.dst = {(i + 1) % 3, (i / 3) % 4};
    spec.source = std::make_shared<DualPeriodicEnvelope>(w.c1, w.p1, w.c2,
                                                         w.p2, w.peak);
    spec.deadline = w.deadline;
    if (cac.request(spec).admitted) ++admitted;
  }

  std::vector<core::ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  const auto bounds = cac.analyzer().analyze(set);

  sim::PacketSimConfig sim_cfg;
  sim_cfg.duration = Seconds{duration};
  sim_cfg.seed = w.seed;
  sim_cfg.randomize_phases = !aligned;
  sim_cfg.async_fill = async_fill;
  const auto sim_result = sim::run_packet_simulation(topo, set, sim_cfg);

  std::printf("# Validation: analytic bound vs packet simulation\n");
  std::printf("# %d connections admitted (beta=%.2f), %.1f s simulated, "
              "%zu events, phases %s, async rotation fill %.2f\n",
              admitted, cfg.beta, duration, sim_result.events_executed,
              aligned ? "ALIGNED (adversarial)" : "randomized", async_fill);

  TableWriter table({"conn", "route", "bound_ms", "sim_max_ms", "sim_mean_ms",
                     "max/bound", "delivered"});
  bool sound = true;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& trace = sim_result.connections[i];
    const double bound = val(bounds[i]);
    const double sim_max = trace.delay.max();
    if (trace.messages_delivered > 0 && sim_max > bound) sound = false;
    char route[32];
    std::snprintf(route, sizeof route, "(%d,%d)->(%d,%d)",
                  set[i].spec.src.ring, set[i].spec.src.index,
                  set[i].spec.dst.ring, set[i].spec.dst.index);
    table.add_row({std::to_string(set[i].spec.id), route,
                   TableWriter::fmt(bound * 1e3, 2),
                   TableWriter::fmt(sim_max * 1e3, 2),
                   TableWriter::fmt(trace.delay.mean() * 1e3, 2),
                   TableWriter::fmt(sim_max / bound, 3),
                   std::to_string(trace.messages_delivered) + "/" +
                       std::to_string(trace.messages_generated)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("max ATM port backlog: %.0f bits\n",
              val(sim_result.max_port_backlog));
  std::printf("soundness (every sim max <= bound): %s\n",
              sound ? "HOLDS" : "VIOLATED");
  return sound ? 0 : 1;
}
