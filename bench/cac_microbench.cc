// Microbenchmark — CAC decision latency (google-benchmark).
//
// The paper's Step-1 efficiency claim: the decomposition-based delay
// analysis makes admission decisions fast enough for on-line use. This
// bench measures (a) one joint worst-case delay analysis, and (b) one full
// admission request (two bisections + final allocation) in steady state —
// request then release against a fixed active set — as a function of the
// number of already-active connections, for both the incremental engine
// (prefix cache + AnalysisSession memo) and the cold recompute path.
//
// `--json[=path]` switches to the perf-regression harness: a chrono-timed
// incremental-vs-cold comparison at N ∈ {16, 64} active connections that
// also checks the two engines produce bit-identical decisions, written as
// JSON for tools/bench_compare.py (CI gates on the speedup RATIO, which is
// machine-independent, not on absolute times). The harness also times a
// third controller with CacConfig::tiered = false — the same incremental
// engine minus the Tier-A screen and Tier-B decision memo — and reports
// tiered_speedup (another in-run ratio CI gates on), the per-tier decision
// tally, and the p50 of the screen-resolved fresh admissions.
//
// `--threads N` additionally times the parallel engine
// (CacConfig::analysis.threads = N) against the serial cold reference and
// emits parallel_speedup per point. The parallel run is measured on the
// COLD configuration: steady-state incremental requests are memo-bound
// (almost no recomputation to parallelize), so the cold path is where the
// wave/speculative decomposition must earn its keep. Decisions are checked
// bit-identical against the serial engine first.
//
// Observability (src/obs/): the --json harness reads the session
// cache-hit counters and the speculative-batch counters out of each
// controller's metrics registry (delta around the timed passes), records
// every timed incremental request into a latency histogram, and reports
// p50/p99 alongside the means. `--trace-out=PATH` records Chrome
// trace-event spans for the whole run (load in chrome://tracing or
// Perfetto); `--explain-out=PATH` (JSON mode) replays a 64-active preload
// plus one probe through an explain-instrumented controller and writes
// the per-request decision records as NDJSON for tools/explain_report.py.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/obs/explain.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/traffic/sources.h"
#include "src/util/check.h"
#include "src/util/units.h"

namespace {

using namespace hetnet;

// Light enough (ρ ≈ 1 Mb/s) that 64 connections fit in the paper
// topology's synchronous-bandwidth ledgers; bursty enough that the FIFO
// busy-period scans do real work.
EnvelopePtr source() {
  return std::make_shared<DualPeriodicEnvelope>(
      units::kbits(50), units::ms(100), units::kbits(5), units::ms(10));
}

net::ConnectionSpec spec_for(net::ConnectionId id, int src_ring, int index,
                             int dst_ring) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = {src_ring, index};
  spec.dst = {dst_ring, index};
  spec.source = source();
  spec.deadline = units::ms(80);
  return spec;
}

// Fills the controller with `n` active connections spread over the rings.
// With `tier_a_hist` set, each fresh admission is timed and the ones the
// Tier-A screen resolved (decision tier screen_admit/screen_reject, read
// as a per-request counter delta) are recorded — the source of the
// tier_a_p50_ns figure, measured where screening actually runs: fresh
// admissions, not memo-replayed steady-state cycles.
void preload(core::AdmissionController& cac, int n,
             hetnet::obs::ShardedHistogram* tier_a_hist = nullptr) {
  const obs::Counter& screen_admit =
      cac.metrics().counter("cac.tier.screen_admit");
  const obs::Counter& screen_reject =
      cac.metrics().counter("cac.tier.screen_reject");
  for (int i = 0; i < n; ++i) {
    const int ring = i % 3;
    const int host = (i / 3) % 4;
    const std::uint64_t screened_before =
        screen_admit.value() + screen_reject.value();
    const auto start = std::chrono::steady_clock::now();
    const auto decision = cac.request(
        spec_for(static_cast<net::ConnectionId>(i + 1), ring, host,
                 (ring + 1) % 3));
    const auto stop = std::chrono::steady_clock::now();
    HETNET_CHECK(decision.admitted, "bench preload connection must admit");
    if (tier_a_hist != nullptr &&
        screen_admit.value() + screen_reject.value() > screened_before) {
      tier_a_hist->record(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
              .count()));
    }
  }
}

// β = 0.2 keeps the per-connection grants lean enough that all 64 preloads
// (and the probe) fit the ledgers; the default β = 0.5 saturates at ~53.
core::CacConfig bench_config(bool incremental, int threads = 1) {
  core::CacConfig cfg;
  cfg.beta = 0.2;
  cfg.incremental = incremental;
  cfg.analysis.threads = threads;
  return cfg;
}

// Worker count for the parallel comparison (--threads N); 1 = skip it.
int g_threads = 1;

constexpr net::ConnectionId kProbeId = 99'999;

net::ConnectionSpec probe_spec() { return spec_for(kProbeId, 0, 3, 2); }

// One steady-state admission cycle: request, then release to restore the
// active set (and exercise the prefix-cache invalidation path).
core::AdmissionDecision request_release(core::AdmissionController& cac,
                                        const net::ConnectionSpec& spec) {
  auto decision = cac.request(spec);
  if (decision.admitted) cac.release(spec.id);
  return decision;
}

void BM_JointDelayAnalysis(benchmark::State& state) {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController cac(&topo, bench_config(true));
  preload(cac, static_cast<int>(state.range(0)));
  std::vector<core::ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  for (auto _ : state) {
    auto delays = cac.analyzer().analyze(set);
    benchmark::DoNotOptimize(delays);
  }
  state.SetLabel(std::to_string(set.size()) + " active");
}
BENCHMARK(BM_JointDelayAnalysis)->Arg(4)->Arg(16)->Arg(64);

// Steady-state admission with the incremental engine (the default config):
// the preload is one-time setup; every iteration reuses cached prefixes and
// the session's port/suffix memo, so only candidate-dependent work repeats.
void BM_AdmissionRequest(benchmark::State& state) {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController cac(&topo, bench_config(true));
  preload(cac, static_cast<int>(state.range(0)));
  const auto spec = probe_spec();
  request_release(cac, spec);  // warm the session before timing
  for (auto _ : state) {
    auto decision = request_release(cac, spec);
    benchmark::DoNotOptimize(decision);
  }
  state.SetLabel("incremental");
}
BENCHMARK(BM_AdmissionRequest)->Arg(0)->Arg(16)->Arg(64);

// The cold reference: identical workload with the incremental engine off,
// so every probe recomputes all prefixes, port bounds, and suffixes.
void BM_AdmissionRequestCold(benchmark::State& state) {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController cac(&topo, bench_config(false));
  preload(cac, static_cast<int>(state.range(0)));
  const auto spec = probe_spec();
  for (auto _ : state) {
    auto decision = request_release(cac, spec);
    benchmark::DoNotOptimize(decision);
  }
  state.SetLabel("cold");
}
BENCHMARK(BM_AdmissionRequestCold)->Arg(0)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// --json harness
// ---------------------------------------------------------------------------

struct ComparePoint {
  int active = 0;
  double incremental_ns = 0.0;
  double cold_ns = 0.0;
  double speedup = 0.0;
  bool decisions_match = false;
  // Tiered-vs-untiered comparison, both on the incremental engine: the
  // untiered controller runs with CacConfig::tiered = false (the pre-tier
  // engine), so tiered_speedup isolates what the Tier-A screen + Tier-B
  // decision memo buy ON TOP of the prefix/port/suffix memos. An in-run
  // ratio — both sides measured in this process — so it gates cleanly on
  // any machine.
  double untiered_ns = 0.0;
  double tiered_speedup = 0.0;
  bool tiered_decisions_match = false;
  // Lifetime decision-tier tally of the tiered controller (preload +
  // warmup + timed passes; exactly one of the three per request). The
  // timed steady-state cycles are decision-memo replays (fallback tier),
  // so the screen share shows up here, in the FRESH admissions.
  std::uint64_t tier_screen_admit = 0;
  std::uint64_t tier_screen_reject = 0;
  std::uint64_t tier_fallback = 0;
  // p50 latency of the screen-resolved fresh admissions (preload requests
  // whose decision tier was screen_admit/screen_reject); < 0 when the
  // screen resolved none (emitted as null).
  double tier_a_p50_ns = -1.0;
  // --threads N comparison (zeros / trivially true when g_threads == 1;
  // emitted as null so bench_compare.py skips the parallel gate cleanly).
  double parallel_cold_ns = 0.0;
  double parallel_speedup = 0.0;
  bool parallel_decisions_match = true;
  // Registry-sourced observability fields (src/obs/metrics.h), taken as
  // deltas around the timed passes so they describe exactly the measured
  // work: session memo traffic for the incremental engine, speculative
  // bisection batching for the parallel engine, and the per-request
  // latency distribution of the timed incremental requests.
  std::uint64_t session_port_evals = 0;
  std::uint64_t session_port_hits = 0;
  std::uint64_t session_suffix_evals = 0;
  std::uint64_t session_suffix_hits = 0;
  std::uint64_t speculative_batches = 0;
  std::uint64_t speculative_points = 0;
  double latency_p50_ns = 0.0;
  double latency_p99_ns = 0.0;
};

// Delta of one named counter between two registry snapshots (0 when the
// name is absent, e.g. a typo or a not-yet-touched counter).
std::uint64_t counter_delta(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after,
    const std::string& name) {
  const auto b = before.find(name);
  const auto a = after.find(name);
  const std::uint64_t bv = b == before.end() ? 0 : b->second;
  const std::uint64_t av = a == after.end() ? 0 : a->second;
  return av >= bv ? av - bv : 0;
}

bool decisions_identical(const core::AdmissionDecision& a,
                         const core::AdmissionDecision& b) {
  return a.admitted == b.admitted && a.reason == b.reason &&
         a.alloc.h_s.value() == b.alloc.h_s.value() &&
         a.alloc.h_r.value() == b.alloc.h_r.value() &&
         a.worst_case_delay.value() == b.worst_case_delay.value();
}

// Times `iters` request/release cycles and returns the mean ns. Each
// timed cycle is additionally recorded into `latency_hist` when non-null
// (two extra clock reads per cycle — noise against the µs-to-ms request
// cost, and identical for every engine being compared).
double mean_request_ns(core::AdmissionController& cac,
                       const net::ConnectionSpec& spec, int warmup,
                       int iters, obs::ShardedHistogram* latency_hist =
                                      nullptr) {
  for (int i = 0; i < warmup; ++i) request_release(cac, spec);
  double total_ns = 0.0;
  for (int i = 0; i < iters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    auto decision = request_release(cac, spec);
    benchmark::DoNotOptimize(decision);
    const auto stop = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
    total_ns += ns;
    if (latency_hist != nullptr) latency_hist->record(ns);
  }
  return total_ns / iters;
}

ComparePoint compare_at(int active) {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController inc(&topo, bench_config(true));
  core::AdmissionController cold(&topo, bench_config(false));
  // The tiered-speedup reference: same incremental engine, tiering off.
  core::CacConfig untiered_cfg = bench_config(true);
  untiered_cfg.tiered = false;
  core::AdmissionController unt(&topo, untiered_cfg);
  obs::ShardedHistogram& tier_a_latency =
      inc.metrics().histogram("cac.tier_a_fresh_latency_ns");
  preload(inc, active, &tier_a_latency);
  preload(cold, active);
  preload(unt, active);

  ComparePoint point;
  point.active = active;
  const auto spec = probe_spec();
  // Soundness first: the timed decision must be bit-identical across the
  // three engines (a fast wrong answer must fail the gate).
  const auto inc_decision = inc.request(spec);
  point.decisions_match = decisions_identical(inc_decision,
                                              cold.request(spec));
  point.tiered_decisions_match =
      decisions_identical(inc_decision, unt.request(spec));
  inc.release(kProbeId);
  cold.release(kProbeId);
  unt.release(kProbeId);

  // Min-of-3 repetitions: the minimum is the least-noise estimate of the
  // true cost on a busy machine (scheduler preemption and frequency
  // scaling only ever ADD time), which keeps the CI gate's speedup ratio
  // stable run to run. The timed incremental cycles also feed the
  // latency histogram in the incremental controller's registry, and the
  // session-memo counters are read as a delta around exactly these
  // passes.
  const int iters = active >= 64 ? 10 : 20;
  obs::ShardedHistogram& latency =
      inc.metrics().histogram("cac.request_latency_ns");
  const auto inc_before = inc.metrics().counter_snapshot();
  point.incremental_ns = mean_request_ns(inc, spec, 2, iters, &latency);
  point.cold_ns = mean_request_ns(cold, spec, 1, iters);
  for (int rep = 0; rep < 2; ++rep) {
    point.incremental_ns = std::min(
        point.incremental_ns, mean_request_ns(inc, spec, 0, iters, &latency));
    point.cold_ns = std::min(point.cold_ns,
                             mean_request_ns(cold, spec, 0, iters));
  }
  point.speedup = point.cold_ns / point.incremental_ns;
  point.untiered_ns = mean_request_ns(unt, spec, 2, iters);
  for (int rep = 0; rep < 2; ++rep) {
    point.untiered_ns =
        std::min(point.untiered_ns, mean_request_ns(unt, spec, 0, iters));
  }
  point.tiered_speedup = point.untiered_ns / point.incremental_ns;
  const auto inc_after = inc.metrics().counter_snapshot();
  // Lifetime tier tally (the steady-state cycles above are memo replays;
  // the screen share lives in the fresh preload admissions).
  const auto total = [&](const char* name) -> std::uint64_t {
    const auto it = inc_after.find(name);
    return it == inc_after.end() ? 0 : it->second;
  };
  point.tier_screen_admit = total("cac.tier.screen_admit");
  point.tier_screen_reject = total("cac.tier.screen_reject");
  point.tier_fallback = total("cac.tier.fallback");
  const auto tier_a_hist = tier_a_latency.merged();
  if (tier_a_hist.count > 0) {
    point.tier_a_p50_ns = tier_a_hist.quantile_upper(0.5);
  }
  point.session_port_evals =
      counter_delta(inc_before, inc_after, "cac.session.port_evals");
  point.session_port_hits =
      counter_delta(inc_before, inc_after, "cac.session.port_hits");
  point.session_suffix_evals =
      counter_delta(inc_before, inc_after, "cac.session.suffix_evals");
  point.session_suffix_hits =
      counter_delta(inc_before, inc_after, "cac.session.suffix_hits");
  const auto hist = latency.merged();
  if (hist.count > 0) {
    point.latency_p50_ns = hist.quantile_upper(0.5);
    point.latency_p99_ns = hist.quantile_upper(0.99);
  }

  if (g_threads > 1) {
    core::AdmissionController par(&topo, bench_config(false, g_threads));
    preload(par, active);
    const auto serial_ref = cold.request(spec);
    cold.release(kProbeId);
    point.parallel_decisions_match =
        decisions_identical(par.request(spec), serial_ref);
    par.release(kProbeId);
    const auto par_before = par.metrics().counter_snapshot();
    point.parallel_cold_ns = mean_request_ns(par, spec, 1, iters);
    for (int rep = 0; rep < 2; ++rep) {
      point.parallel_cold_ns =
          std::min(point.parallel_cold_ns, mean_request_ns(par, spec, 0, iters));
    }
    point.parallel_speedup = point.cold_ns / point.parallel_cold_ns;
    const auto par_after = par.metrics().counter_snapshot();
    point.speculative_batches =
        counter_delta(par_before, par_after, "cac.speculative_batches");
    point.speculative_points =
        counter_delta(par_before, par_after, "cac.speculative_points");
  }
  return point;
}

// --explain-out: replays the 64-active preload plus one probe request
// through an explain-instrumented incremental controller and writes the
// controller's own per-decision records (tools/explain_report.py reads
// this). A dedicated pass so explain overhead never touches timed runs.
int write_explain(const std::string& path) {
  obs::ExplainSink sink;
  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController cac(&topo, bench_config(true));
  cac.set_explain(&sink);
  preload(cac, 64);
  request_release(cac, probe_spec());
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  sink.write_ndjson(out);
  std::printf("wrote %s (%zu explain records)\n", path.c_str(), sink.size());
  return 0;
}

// --metrics-out: runs the canonical 64-active preload plus one probe
// request on a fresh tiered controller and writes the registry's JSON
// exposition. Counters are decision-derived, so a pinned run is a stable
// baseline for tools/obs_diff.py --exact (latency histograms ride along
// but obs_diff never compares them).
int write_metrics(const std::string& path) {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController cac(&topo, bench_config(true));
  preload(cac, 64);
  request_release(cac, probe_spec());
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  obs::write_metrics_json(cac.metrics(), out);
  std::printf("wrote %s (telemetry exposition)\n", path.c_str());
  return 0;
}

int run_json(const std::string& path) {
  std::vector<ComparePoint> points;
  for (const int active : {16, 64}) {
    points.push_back(compare_at(active));
    std::printf("active=%2d  incremental=%10.0f ns  cold=%12.0f ns  "
                "speedup=%5.2fx  decisions_match=%s\n",
                points.back().active, points.back().incremental_ns,
                points.back().cold_ns, points.back().speedup,
                points.back().decisions_match ? "yes" : "NO");
    std::printf("           p50=%10.0f ns  p99=%12.0f ns  "
                "port hits/evals=%llu/%llu  suffix hits/evals=%llu/%llu\n",
                points.back().latency_p50_ns, points.back().latency_p99_ns,
                static_cast<unsigned long long>(points.back().session_port_hits),
                static_cast<unsigned long long>(
                    points.back().session_port_evals),
                static_cast<unsigned long long>(
                    points.back().session_suffix_hits),
                static_cast<unsigned long long>(
                    points.back().session_suffix_evals));
    std::printf("           untiered=%10.0f ns  tiered_speedup=%5.2fx  "
                "decisions_match=%s  tiers admit/reject/fallback="
                "%llu/%llu/%llu  tier_a_p50=%.0f ns\n",
                points.back().untiered_ns, points.back().tiered_speedup,
                points.back().tiered_decisions_match ? "yes" : "NO",
                static_cast<unsigned long long>(
                    points.back().tier_screen_admit),
                static_cast<unsigned long long>(
                    points.back().tier_screen_reject),
                static_cast<unsigned long long>(points.back().tier_fallback),
                points.back().tier_a_p50_ns);
    if (g_threads > 1) {
      std::printf("           parallel(%d)=%9.0f ns  parallel_speedup=%5.2fx"
                  "  decisions_match=%s  speculative batches/points=%llu/%llu\n",
                  g_threads, points.back().parallel_cold_ns,
                  points.back().parallel_speedup,
                  points.back().parallel_decisions_match ? "yes" : "NO",
                  static_cast<unsigned long long>(
                      points.back().speculative_batches),
                  static_cast<unsigned long long>(
                      points.back().speculative_points));
    }
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"cac_microbench\",\n  \"threads\": " << g_threads
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"active\": " << p.active
        << ", \"incremental_ns\": " << static_cast<long long>(p.incremental_ns)
        << ", \"cold_ns\": " << static_cast<long long>(p.cold_ns)
        << ", \"speedup\": " << p.speedup
        << ", \"decisions_match\": " << (p.decisions_match ? "true" : "false")
        << ", \"untiered_ns\": " << static_cast<long long>(p.untiered_ns)
        << ", \"tiered_speedup\": " << p.tiered_speedup
        << ", \"tiered_decisions_match\": "
        << (p.tiered_decisions_match ? "true" : "false")
        << ", \"screen_admit\": " << p.tier_screen_admit
        << ", \"screen_reject\": " << p.tier_screen_reject
        << ", \"fallback\": " << p.tier_fallback << ", \"tier_a_p50_ns\": ";
    if (p.tier_a_p50_ns >= 0.0) {
      out << static_cast<long long>(p.tier_a_p50_ns);
    } else {
      out << "null";  // the screen resolved no fresh admission at this point
    }
    // At --threads 1 the parallel engine never ran: null, not a fake 0,
    // so bench_compare.py can tell "unmeasured" from "measured as zero".
    out << ", \"parallel_cold_ns\": ";
    if (g_threads > 1) {
      out << static_cast<long long>(p.parallel_cold_ns);
    } else {
      out << "null";
    }
    out << ", \"parallel_speedup\": ";
    if (g_threads > 1) {
      out << p.parallel_speedup;
    } else {
      out << "null";
    }
    out << ", \"parallel_decisions_match\": "
        << (p.parallel_decisions_match ? "true" : "false")
        << ", \"latency_p50_ns\": " << static_cast<long long>(p.latency_p50_ns)
        << ", \"latency_p99_ns\": " << static_cast<long long>(p.latency_p99_ns)
        << ", \"session_port_evals\": " << p.session_port_evals
        << ", \"session_port_hits\": " << p.session_port_hits
        << ", \"session_suffix_evals\": " << p.session_suffix_evals
        << ", \"session_suffix_hits\": " << p.session_suffix_hits
        << ", \"speculative_batches\": " << p.speculative_batches
        << ", \"speculative_points\": " << p.speculative_points << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());

  for (const auto& p : points) {
    if (!p.decisions_match) {
      std::fprintf(stderr,
                   "FAIL: incremental and cold decisions diverge at %d "
                   "active connections\n",
                   p.active);
      return 1;
    }
    if (!p.tiered_decisions_match) {
      std::fprintf(stderr,
                   "FAIL: tiered and untiered decisions diverge at %d "
                   "active connections\n",
                   p.active);
      return 1;
    }
    if (!p.parallel_decisions_match) {
      std::fprintf(stderr,
                   "FAIL: parallel and serial decisions diverge at %d "
                   "active connections\n",
                   p.active);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string json_path = "BENCH_cac.json";
  std::string trace_path;
  std::string explain_path;
  std::string metrics_path;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg == "--threads" && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      g_threads = std::atoi(arg.substr(10).c_str());
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else if (arg.rfind("--explain-out=", 0) == 0) {
      explain_path = arg.substr(14);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = arg.substr(14);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  HETNET_CHECK(g_threads >= 1, "--threads must be >= 1");
  hetnet::obs::ScopedRecording recording(!trace_path.empty());
  int rc = 0;
  if (json) {
    rc = run_json(json_path);
    if (rc == 0 && !explain_path.empty()) rc = write_explain(explain_path);
    if (rc == 0 && !metrics_path.empty()) rc = write_metrics(metrics_path);
  } else {
    HETNET_CHECK(explain_path.empty(),
                 "--explain-out requires the --json harness");
    HETNET_CHECK(metrics_path.empty(),
                 "--metrics-out requires the --json harness");
    int pargc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pargc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (!trace_path.empty()) {
    std::ofstream trace(trace_path);
    if (!trace) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
      return 1;
    }
    recording.recorder().write_chrome_trace(trace);
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                recording.recorder().event_count());
  }
  return rc;
}
