// Microbenchmark — CAC decision latency (google-benchmark).
//
// The paper's Step-1 efficiency claim: the decomposition-based delay
// analysis makes admission decisions fast enough for on-line use. This
// bench measures (a) one joint worst-case delay analysis and (b) one full
// admission request (two bisections + final allocation) as a function of
// the number of already-active connections.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/core/cac.h"
#include "src/traffic/sources.h"
#include "src/util/units.h"

namespace {

using namespace hetnet;

EnvelopePtr source() {
  return std::make_shared<DualPeriodicEnvelope>(
      units::kbits(500), units::ms(100), units::kbits(50), units::ms(10));
}

net::ConnectionSpec spec_for(net::ConnectionId id, int src_ring, int index,
                             int dst_ring) {
  net::ConnectionSpec spec;
  spec.id = id;
  spec.src = {src_ring, index};
  spec.dst = {dst_ring, index};
  spec.source = source();
  spec.deadline = units::ms(80);
  return spec;
}

// Fills the controller with `n` active connections spread over the rings.
void preload(core::AdmissionController& cac, int n) {
  for (int i = 0; i < n; ++i) {
    const int ring = i % 3;
    const int host = (i / 3) % 4;
    const auto decision = cac.request(
        spec_for(static_cast<net::ConnectionId>(i + 1), ring, host,
                 (ring + 1) % 3));
    benchmark::DoNotOptimize(decision.admitted);
  }
}

void BM_JointDelayAnalysis(benchmark::State& state) {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::CacConfig cfg;
  core::AdmissionController cac(&topo, cfg);
  preload(cac, static_cast<int>(state.range(0)));
  std::vector<core::ConnectionInstance> set;
  for (const auto& [id, conn] : cac.active()) {
    set.push_back({conn.spec, conn.alloc});
  }
  for (auto _ : state) {
    auto delays = cac.analyzer().analyze(set);
    benchmark::DoNotOptimize(delays);
  }
  state.SetLabel(std::to_string(set.size()) + " active");
}
BENCHMARK(BM_JointDelayAnalysis)->Arg(1)->Arg(3)->Arg(6)->Arg(9);

void BM_AdmissionRequest(benchmark::State& state) {
  const net::AbhnTopology topo(net::paper_topology_params());
  core::CacConfig cfg;
  for (auto _ : state) {
    state.PauseTiming();
    core::AdmissionController cac(&topo, cfg);
    preload(cac, static_cast<int>(state.range(0)));
    const auto spec = spec_for(999, 0, 3, 2);
    state.ResumeTiming();
    auto decision = cac.request(spec);
    benchmark::DoNotOptimize(decision);
  }
  state.SetLabel("request with preload");
}
BENCHMARK(BM_AdmissionRequest)->Arg(0)->Arg(3)->Arg(6)->Arg(9);

}  // namespace

BENCHMARK_MAIN();
