// Rejection anatomy — WHY requests fail, by β.
//
// Figure 7's hump is the sum of two failure modes the paper argues about:
//   * β too small → existing connections sit exactly at their deadlines, so
//     a newcomer's FIFO-port disturbance violates eq. (24): the request is
//     rejected as INFEASIBLE;
//   * β too large → the rings' synchronous budgets are hoarded, so eq. (26)
//     leaves nothing to allocate: rejected as NO-BANDWIDTH.
// This run splits the rejection counts by reason across β, making the
// mechanism (not just the aggregate AP) visible.
//
// Flags (key=value): u requests warmup seed seeds rho_mbps c2_kbits p1_ms
// p2_ms deadline_ms lifetime_s iters eqtol
#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams base = bench::workload_from_flags(flags);
  const double u = flags.get("u", 0.6);
  const int seeds = static_cast<int>(flags.get("seeds", 3));
  core::CacConfig probe = bench::cac_from_flags(flags, 0.5);
  flags.check_unknown();

  const net::AbhnTopology topo(net::paper_topology_params());

  std::printf("# Rejection anatomy at U = %.2f\n", u);
  TableWriter table({"beta", "AP", "infeasible", "no-bandwidth",
                     "all-hosts-busy", "mean H_S (ms)"});
  for (double beta : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    std::size_t total = 0;
    std::size_t admitted = 0;
    std::size_t infeasible = 0;
    std::size_t no_bw = 0;
    std::size_t skipped = 0;
    RunningStats h_s;
    for (int s = 0; s < seeds; ++s) {
      sim::WorkloadParams w = base;
      w.seed = base.seed + static_cast<std::uint64_t>(1000 * s);
      w.lambda = sim::lambda_for_utilization(u, w, topo);
      core::CacConfig cfg = probe;
      cfg.beta = beta;
      const auto r = sim::run_admission_simulation(topo, cfg, w);
      total += r.total_requests;
      admitted += r.admitted;
      infeasible += r.rejected_infeasible;
      no_bw += r.rejected_no_bandwidth;
      skipped += r.skipped_no_source;
      h_s.add(r.granted_h_s.mean());
    }
    const double n = static_cast<double>(total);
    table.add_row({TableWriter::fmt(beta, 2),
                   TableWriter::fmt(static_cast<double>(admitted) / n, 3),
                   TableWriter::fmt(static_cast<double>(infeasible) / n, 3),
                   TableWriter::fmt(static_cast<double>(no_bw) / n, 3),
                   TableWriter::fmt(static_cast<double>(skipped) / n, 3),
                   TableWriter::fmt(h_s.mean() * 1e3, 2)});
    std::fprintf(stderr, "beta=%.2f done\n", beta);
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\n(infeasible = deadline constraints eq. 24/25 fail; "
              "no-bandwidth = eq. 26/27 fail)\n");
  return 0;
}
