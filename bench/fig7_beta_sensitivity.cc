// Figure 7 — Sensitivity of β (Section 6.1).
//
// Sweeps β from 0 to 1 at backbone utilizations U ∈ {0.3, 0.6, 0.9} and
// prints the admission probability for each point, one row per β and one
// column per load, exactly the series of the paper's figure.
//
// Paper observations this run should reproduce:
//   * heavy load (U = 0.9): AP is sensitive to β and dips at β = 0 and 1;
//   * light load: the sensitivity is smaller;
//   * a wide mid range of β performs near the maximum (≈ [0.4, 0.7]).
//
// Flags (key=value): requests warmup seed seeds rho_mbps c2_kbits p1_ms
// p2_ms deadline_ms lifetime_s iters eqtol beta_steps threads
// trace_out explain_out
//
// threads=N shards the (β, U, seed) replicas over N workers (default: all
// hardware threads); every replica owns its RNG stream and controller, so
// the table is identical for any N.
//
// trace_out=FILE records Chrome trace-event spans for the sweep
// (chrome://tracing / Perfetto); explain_out=FILE gives every replica its
// own decision-explain sink and writes all records, in job order, as
// NDJSON for tools/explain_report.py. Both are observation-only: the
// table is bit-identical with or without them.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/explain.h"
#include "src/obs/span.h"
#include "src/util/chart.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams base = bench::workload_from_flags(flags);
  const int beta_steps = static_cast<int>(flags.get("beta_steps", 11));
  const int seeds = static_cast<int>(flags.get("seeds", 3));
  core::CacConfig cac_probe = bench::cac_from_flags(flags, 0.5);
  const int threads = bench::threads_from_flags(flags);
  const std::string trace_out = flags.get_string("trace_out", "");
  const std::string explain_out = flags.get_string("explain_out", "");
  flags.check_unknown();
  obs::ScopedRecording recording(!trace_out.empty());

  const net::AbhnTopology topo(net::paper_topology_params());
  // The paper's loads plus a genuinely light point: in this faithful
  // FDDI(100 Mb/s)-bounded build the admittable backbone utilization tops
  // out near 0.25 (see EXPERIMENTS.md), so the paper's "light" regime sits
  // at U ≈ 0.1 here.
  const std::vector<double> loads = {0.1, 0.3, 0.6, 0.9};

  std::printf("# Figure 7: admission probability vs beta\n");
  std::printf("# workload: rho=%.1f Mb/s, C2=%.0f kb / P2=%.0f ms, D=%.0f ms, "
              "1/mu=%.0f s, %d+%d requests x %d seeds\n",
              val(sim::source_rate(base)) / 1e6, val(base.c2) / 1e3,
              val(base.p2) * 1e3, val(base.deadline) * 1e3,
              val(base.mean_lifetime), base.warmup_requests,
              base.num_requests, seeds);

  // Sharded sweep: enumerate every (β, U, seed) replica up front, run them
  // over the worker pool, then fold the results in the same nested order
  // the serial loop used (ProportionStats::merge is integer addition, so
  // the fold order is immaterial anyway).
  std::vector<bench::SimJob> jobs;
  for (int bi = 0; bi < beta_steps; ++bi) {
    const double beta =
        beta_steps == 1 ? 0.5
                        : static_cast<double>(bi) / (beta_steps - 1);
    for (std::size_t li = 0; li < loads.size(); ++li) {
      for (int s = 0; s < seeds; ++s) {
        sim::WorkloadParams w = base;
        w.seed = base.seed + static_cast<std::uint64_t>(1000 * s);
        w.lambda = sim::lambda_for_utilization(loads[li], w, topo);
        core::CacConfig cfg = cac_probe;
        cfg.beta = beta;
        jobs.push_back({cfg, w});
      }
    }
  }
  // One explain sink per replica: jobs run concurrently, and per-job sinks
  // concatenated in job order keep the NDJSON deterministic for any
  // thread count (a shared sink would interleave by scheduling).
  std::vector<std::unique_ptr<obs::ExplainSink>> sinks;
  if (!explain_out.empty()) {
    sinks.reserve(jobs.size());
    for (auto& j : jobs) {
      sinks.push_back(std::make_unique<obs::ExplainSink>());
      j.cfg.explain = sinks.back().get();
    }
  }
  const std::vector<sim::SimulationResult> results =
      bench::run_jobs(topo, jobs, threads);

  TableWriter table(
      {"beta", "AP(U=0.1)", "AP(U=0.3)", "AP(U=0.6)", "AP(U=0.9)"});
  std::vector<std::vector<std::pair<double, double>>> curves(loads.size());
  std::size_t job = 0;
  for (int bi = 0; bi < beta_steps; ++bi) {
    const double beta =
        beta_steps == 1 ? 0.5
                        : static_cast<double>(bi) / (beta_steps - 1);
    std::vector<std::string> row{TableWriter::fmt(beta, 2)};
    for (std::size_t li = 0; li < loads.size(); ++li) {
      sim::SimulationResult pooled;
      for (int s = 0; s < seeds; ++s) {
        pooled.merge(results[job++]);
      }
      row.push_back(TableWriter::fmt(pooled.admission.proportion(), 3));
      curves[li].push_back({beta, pooled.admission.proportion()});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_ascii().c_str());

  AsciiChart chart(56, 14);
  chart.set_y_range(0.0, 1.0);
  const char glyphs[] = {'1', '3', '6', '9'};
  for (std::size_t li = 0; li < loads.size(); ++li) {
    char label[16];
    std::snprintf(label, sizeof label, "U=%.1f", loads[li]);
    chart.add_series(label, glyphs[li], curves[li]);
  }
  std::printf("\nAP vs beta:\n%s", chart.render().c_str());
  std::printf("\ncsv:\n%s", table.to_csv().c_str());

  if (!explain_out.empty()) {
    std::ofstream out(explain_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   explain_out.c_str());
      return 1;
    }
    std::size_t records = 0;
    for (const auto& sink : sinks) {
      sink->write_ndjson(out);
      records += sink->size();
    }
    std::printf("\nwrote %s (%zu explain records)\n", explain_out.c_str(),
                records);
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    recording.recorder().write_chrome_trace(out);
    std::printf("\nwrote %s (%zu trace events)\n", trace_out.c_str(),
                recording.recorder().event_count());
  }
  return 0;
}
