// Figure 6 — the feasible region in the H_S–H_R plane (Section 5.2).
//
// Reproduces the geometry the paper draws: under background load, the set
// of feasible (H_S, H_R) allocations for a requesting connection is a
// rectangle whose lower-left boundary is a concave curve; the proportional
// line ζ crosses it between (H^min_need) and the max-available corner.
// The run prints the sampled region, marks the CAC's anchors, and reports
// the empirical convexity check of Theorems 3–4.
//
// Flags (key=value): steps background rho_mbps c2_kbits p1_ms p2_ms
// deadline_ms requests warmup seed seeds lifetime_s iters eqtol
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/region.h"
#include "src/traffic/sources.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams w = bench::workload_from_flags(flags);
  core::CacConfig cfg = bench::cac_from_flags(flags, 0.5);
  const int steps = static_cast<int>(flags.get("steps", 21));
  const int background = static_cast<int>(flags.get("background", 3));
  flags.check_unknown();

  const net::AbhnTopology topo(net::paper_topology_params());
  core::AdmissionController cac(&topo, cfg);

  // Admit a few background connections that share the new connection's
  // path, so both boundary types of Figure 6 are visible.
  auto source = [&] {
    return std::make_shared<hetnet::DualPeriodicEnvelope>(w.c1, w.p1, w.c2, w.p2,
                                                  w.peak);
  };
  int admitted = 0;
  for (int i = 0; i < background; ++i) {
    net::ConnectionSpec bg;
    bg.id = static_cast<net::ConnectionId>(i + 1);
    bg.src = {0, i + 1};
    bg.dst = {1, i + 1};
    bg.source = source();
    bg.deadline = w.deadline;
    if (cac.request(bg).admitted) ++admitted;
  }

  net::ConnectionSpec spec;
  spec.id = 1000;
  spec.src = {0, 0};
  spec.dst = {1, 0};
  spec.source = source();
  spec.deadline = w.deadline;

  std::printf("# Figure 6: feasible region of (H_S, H_R)\n");
  std::printf("# background connections admitted: %d; deadline %.0f ms\n",
              admitted, val(w.deadline) * 1e3);

  const core::RegionGrid grid =
      core::sample_feasible_region(cac, spec, steps, steps);
  std::printf("%s", core::render_region(grid).c_str());

  std::size_t feasible = 0;
  for (const auto& s : grid.samples) feasible += s.feasible ? 1 : 0;
  std::printf("feasible samples: %zu / %zu\n", feasible, grid.samples.size());
  const int violations = core::count_convexity_violations(grid);
  std::printf("convexity violations (Theorems 3-4 predict 0): %d\n",
              violations);

  const auto decision = cac.request(spec);
  if (decision.admitted) {
    std::printf(
        "CAC anchors on line ζ: min_need=(%.3f, %.3f) ms, "
        "max_need=(%.3f, %.3f) ms, max_avail=(%.3f, %.3f) ms\n",
        val(decision.min_need.h_s) * 1e3, val(decision.min_need.h_r) * 1e3,
        val(decision.max_need.h_s) * 1e3, val(decision.max_need.h_r) * 1e3,
        val(decision.max_avail.h_s) * 1e3, val(decision.max_avail.h_r) * 1e3);
    std::printf("granted (beta=%.2f): (%.3f, %.3f) ms, bound %.2f ms\n",
                cfg.beta, val(decision.alloc.h_s) * 1e3, val(decision.alloc.h_r) * 1e3,
                val(decision.worst_case_delay) * 1e3);
  } else {
    std::printf("requesting connection rejected (reason %d)\n",
                static_cast<int>(decision.reason));
  }
  return 0;
}
