// Ablation — ingress traffic regulation (the [15] companion technique).
//
// Inserting a (σ, ρ) shaper at the interface device trades a LOCAL, exactly
// known shaping delay for smaller disturbance at every shared ATM port.
// This bench sweeps the bucket depth σ for a bursty connection sharing its
// backbone path with cross traffic and prints the decomposition:
//
//     shaping delay  +  port queueing delay  =  the part σ controls
//
// Shaping is paid ONCE at the ingress but saves at EVERY traversed port, so
// with several contended hops the end-to-end minimum sits at an
// intermediate σ — the argument of [15] reproduced quantitatively.
//
// Flags (key=value): cross_flows rho_mbps c2_kbits p1_ms p2_ms deadline_ms
// requests warmup seed lifetime_s iters eqtol seeds
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/servers/fifo_mux.h"
#include "src/servers/regulator.h"
#include "src/traffic/algebra.h"
#include "src/traffic/sources.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams w = bench::workload_from_flags(flags);
  const int cross_flows = static_cast<int>(flags.get("cross_flows", 20));
  const int hops = static_cast<int>(flags.get("hops", 3));
  flags.check_unknown();

  auto source = [&] {
    return std::make_shared<DualPeriodicEnvelope>(w.c1, w.p1, w.c2, w.p2,
                                                  w.peak);
  };

  // Realistic deployment: EVERY flow entering the port is shaped with the
  // same bucket, so σ controls the whole port's aggregate burstiness.
  FifoMuxParams port;
  port.capacity = units::mbps(155) * 48.0 / 53.0;
  port.non_preemption = units::bytes(53) / units::mbps(155);
  port.cell_bits = units::bytes(48);

  const BitsPerSecond rho_shape = sim::source_rate(w) * 1.05;

  std::printf("# Ablation: ingress regulation (flow %.1f Mb/s, %d cross "
              "flows per port, %d contended hops, all flows shaped)\n",
              val(sim::source_rate(w)) / 1e6, cross_flows, hops);
  TableWriter table(
      {"sigma_kbit", "shaping_ms", "per_port_ms", "end_to_end_ms"});

  // No regulator: the raw bursts hit the port together.
  {
    std::vector<EnvelopePtr> cross;
    for (int i = 0; i < cross_flows; ++i) cross.push_back(source());
    const FifoMuxServer mux("port", port, sum_envelopes(cross));
    const auto d = mux.analyze(source());
    if (d.has_value()) {
      table.add_row({"(none)", "0.00",
                     TableWriter::fmt(d->worst_case_delay.value() * 1e3, 2),
                     TableWriter::fmt(hops * d->worst_case_delay.value() * 1e3, 2)});
    }
  }
  for (double sigma_kbit : {100.0, 50.0, 25.0, 10.0, 5.0, 2.0}) {
    RegulatorParams reg_params;
    reg_params.sigma = units::kbits(sigma_kbit);
    reg_params.rho = rho_shape;
    const RegulatorServer reg("shaper", reg_params);
    const auto shaped = reg.analyze(source());
    if (!shaped.has_value()) {
      table.add_row({TableWriter::fmt(sigma_kbit, 0), "(unbounded)", "-",
                     "-"});
      continue;
    }
    std::vector<EnvelopePtr> cross;
    for (int i = 0; i < cross_flows; ++i) {
      const auto other = reg.analyze(source());
      cross.push_back(other->output);
    }
    const FifoMuxServer mux("port", port, sum_envelopes(cross));
    const auto at_port = mux.analyze(shaped->output);
    if (!at_port.has_value()) continue;
    const double total =
        shaped->worst_case_delay.value() + val(hops * at_port->worst_case_delay);
    table.add_row({TableWriter::fmt(sigma_kbit, 0),
                   TableWriter::fmt(shaped->worst_case_delay.value() * 1e3, 2),
                   TableWriter::fmt(at_port->worst_case_delay.value() * 1e3, 2),
                   TableWriter::fmt(total * 1e3, 2)});
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\n(port delays include the one-cell non-preemption term; the "
              "shaper rate is 1.05·rho)\n");
  return 0;
}
