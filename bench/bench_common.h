// Shared command-line plumbing for the figure-reproduction benches.
//
// Every bench accepts overrides as `key=value` arguments (e.g.
// `requests=500 seed=3 rho_mbps=15`) so the paper sweeps can be re-run at
// higher fidelity without recompiling. Unknown keys abort with a message
// listing the accepted ones.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/cac.h"
#include "src/sim/workload.h"
#include "src/util/flags.h"
#include "src/util/thread_pool.h"

namespace hetnet::bench {

using hetnet::Flags;

// Builds the Section-6 workload from flags (defaults are the calibrated
// values documented in EXPERIMENTS.md; λ is set per sweep point from U).
inline sim::WorkloadParams workload_from_flags(Flags& flags) {
  sim::WorkloadParams w;
  const BitsPerSecond rho = units::mbps(flags.get("rho_mbps", 5.0));
  w.p1 = units::ms(flags.get("p1_ms", 100.0));
  w.c1 = rho * w.p1;
  w.c2 = units::kbits(flags.get("c2_kbits", 50.0));
  w.p2 = units::ms(flags.get("p2_ms", 10.0));
  w.deadline = units::ms(flags.get("deadline_ms", 80.0));
  w.mean_lifetime = units::sec(flags.get("lifetime_s", 20.0));
  w.num_requests = static_cast<int>(flags.get("requests", 400));
  w.warmup_requests = static_cast<int>(flags.get("warmup", 50));
  w.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  return w;
}

inline core::CacConfig cac_from_flags(Flags& flags, double beta) {
  core::CacConfig cfg;
  cfg.beta = beta;
  cfg.bisection_iters = static_cast<int>(flags.get("iters", 12));
  cfg.equality_tolerance = flags.get("eqtol", 0.05);
  return cfg;
}

// Worker count for the sharded sweep drivers: `threads=N` flag, defaulting
// to the machine's hardware concurrency.
inline int threads_from_flags(Flags& flags) {
  return static_cast<int>(
      flags.get("threads", static_cast<double>(util::hardware_threads())));
}

// One point of a sweep: a full admission simulation under `cfg`/`params`.
struct SimJob {
  core::CacConfig cfg;
  sim::WorkloadParams params;
};

// Sharded sweep driver: runs every job's simulation, `threads` at a time,
// and returns the results in job order. Each replica owns its RNG stream
// and controller (nothing shared), so the output is identical to the serial
// loop for any thread count.
inline std::vector<sim::SimulationResult> run_jobs(
    const net::AbhnTopology& topo, const std::vector<SimJob>& jobs,
    int threads) {
  return util::parallel_map<sim::SimulationResult>(
      jobs.size(), threads, [&](std::size_t k) {
        return sim::run_admission_simulation(topo, jobs[k].cfg,
                                             jobs[k].params);
      });
}

}  // namespace hetnet::bench
