// Shared command-line plumbing for the figure-reproduction benches.
//
// Every bench accepts overrides as `key=value` arguments (e.g.
// `requests=500 seed=3 rho_mbps=15`) so the paper sweeps can be re-run at
// higher fidelity without recompiling. Unknown keys abort with a message
// listing the accepted ones.
#pragma once

#include "src/core/cac.h"
#include "src/sim/workload.h"
#include "src/util/flags.h"

namespace hetnet::bench {

using hetnet::Flags;

// Builds the Section-6 workload from flags (defaults are the calibrated
// values documented in EXPERIMENTS.md; λ is set per sweep point from U).
inline sim::WorkloadParams workload_from_flags(Flags& flags) {
  sim::WorkloadParams w;
  const BitsPerSecond rho = units::mbps(flags.get("rho_mbps", 5.0));
  w.p1 = units::ms(flags.get("p1_ms", 100.0));
  w.c1 = rho * w.p1;
  w.c2 = units::kbits(flags.get("c2_kbits", 50.0));
  w.p2 = units::ms(flags.get("p2_ms", 10.0));
  w.deadline = units::ms(flags.get("deadline_ms", 80.0));
  w.mean_lifetime = units::sec(flags.get("lifetime_s", 20.0));
  w.num_requests = static_cast<int>(flags.get("requests", 400));
  w.warmup_requests = static_cast<int>(flags.get("warmup", 50));
  w.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  return w;
}

inline core::CacConfig cac_from_flags(Flags& flags, double beta) {
  core::CacConfig cfg;
  cfg.beta = beta;
  cfg.bisection_iters = static_cast<int>(flags.get("iters", 12));
  cfg.equality_tolerance = flags.get("eqtol", 0.05);
  return cfg;
}

}  // namespace hetnet::bench
