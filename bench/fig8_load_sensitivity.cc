// Figure 8 — Sensitivity of the system load (Section 6.2).
//
// Sweeps the offered backbone utilization U from light to overload at
// β ∈ {0, 0.5, 1.0} and prints the admission probability for each point.
//
// Paper observations this run should reproduce:
//   * AP decreases as U increases;
//   * β = 0.5 is a reasonable choice, and clearly better than β = 0 or 1
//     under heavy load (U = 0.9).
//
// Flags (key=value): requests warmup seed seeds rho_mbps c2_kbits p1_ms
// p2_ms deadline_ms lifetime_s iters eqtol u_min u_max u_steps threads
// trace_out explain_out
//
// threads=N shards the (U, β, seed) replicas over N workers (default: all
// hardware threads); every replica owns its RNG stream and controller, so
// the table is identical for any N.
//
// trace_out=FILE records Chrome trace-event spans for the sweep
// (chrome://tracing / Perfetto); explain_out=FILE gives every replica its
// own decision-explain sink and writes all records, in job order, as
// NDJSON for tools/explain_report.py. Both are observation-only: the
// table is bit-identical with or without them.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/explain.h"
#include "src/obs/span.h"
#include "src/util/chart.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams base = bench::workload_from_flags(flags);
  const double u_min = flags.get("u_min", 0.1);
  const double u_max = flags.get("u_max", 1.0);
  const int u_steps = static_cast<int>(flags.get("u_steps", 10));
  const int seeds = static_cast<int>(flags.get("seeds", 3));
  core::CacConfig cac_probe = bench::cac_from_flags(flags, 0.5);
  const int threads = bench::threads_from_flags(flags);
  const std::string trace_out = flags.get_string("trace_out", "");
  const std::string explain_out = flags.get_string("explain_out", "");
  flags.check_unknown();
  obs::ScopedRecording recording(!trace_out.empty());

  const net::AbhnTopology topo(net::paper_topology_params());
  const std::vector<double> betas = {0.0, 0.5, 1.0};

  std::printf("# Figure 8: admission probability vs offered utilization\n");
  std::printf("# workload: rho=%.1f Mb/s, C2=%.0f kb / P2=%.0f ms, D=%.0f ms, "
              "1/mu=%.0f s, %d+%d requests x %d seeds\n",
              val(sim::source_rate(base)) / 1e6, val(base.c2) / 1e3,
              val(base.p2) * 1e3, val(base.deadline) * 1e3,
              val(base.mean_lifetime), base.warmup_requests,
              base.num_requests, seeds);

  // Sharded sweep: enumerate every (U, β, seed) replica up front, run them
  // over the worker pool, then fold in the serial loop's nested order
  // (ProportionStats::merge is integer addition — order-immaterial).
  const auto u_at = [&](int ui) {
    return u_steps == 1
               ? u_min
               : u_min +
                     (u_max - u_min) * static_cast<double>(ui) / (u_steps - 1);
  };
  std::vector<bench::SimJob> jobs;
  for (int ui = 0; ui < u_steps; ++ui) {
    for (std::size_t bi = 0; bi < betas.size(); ++bi) {
      for (int s = 0; s < seeds; ++s) {
        sim::WorkloadParams w = base;
        w.seed = base.seed + static_cast<std::uint64_t>(1000 * s);
        w.lambda = sim::lambda_for_utilization(u_at(ui), w, topo);
        core::CacConfig cfg = cac_probe;
        cfg.beta = betas[bi];
        jobs.push_back({cfg, w});
      }
    }
  }
  // One explain sink per replica: jobs run concurrently, and per-job sinks
  // concatenated in job order keep the NDJSON deterministic for any
  // thread count (a shared sink would interleave by scheduling).
  std::vector<std::unique_ptr<obs::ExplainSink>> sinks;
  if (!explain_out.empty()) {
    sinks.reserve(jobs.size());
    for (auto& j : jobs) {
      sinks.push_back(std::make_unique<obs::ExplainSink>());
      j.cfg.explain = sinks.back().get();
    }
  }
  const std::vector<sim::SimulationResult> results =
      bench::run_jobs(topo, jobs, threads);

  TableWriter table({"U", "AP(beta=0)", "AP(beta=0.5)", "AP(beta=1)"});
  std::vector<std::vector<std::pair<double, double>>> curves(betas.size());
  std::size_t job = 0;
  for (int ui = 0; ui < u_steps; ++ui) {
    const double u = u_at(ui);
    std::vector<std::string> row{TableWriter::fmt(u, 2)};
    for (std::size_t bi = 0; bi < betas.size(); ++bi) {
      sim::SimulationResult pooled;
      for (int s = 0; s < seeds; ++s) {
        pooled.merge(results[job++]);
      }
      row.push_back(TableWriter::fmt(pooled.admission.proportion(), 3));
      curves[bi].push_back({u, pooled.admission.proportion()});
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_ascii().c_str());

  AsciiChart chart(56, 14);
  chart.set_y_range(0.0, 1.0);
  const char glyphs[] = {'0', '5', '1'};
  for (std::size_t bi = 0; bi < betas.size(); ++bi) {
    char label[16];
    std::snprintf(label, sizeof label, "beta=%.1f", betas[bi]);
    chart.add_series(label, glyphs[bi], curves[bi]);
  }
  std::printf("\nAP vs U:\n%s", chart.render().c_str());
  std::printf("\ncsv:\n%s", table.to_csv().c_str());

  if (!explain_out.empty()) {
    std::ofstream out(explain_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   explain_out.c_str());
      return 1;
    }
    std::size_t records = 0;
    for (const auto& sink : sinks) {
      sink->write_ndjson(out);
      records += sink->size();
    }
    std::printf("\nwrote %s (%zu explain records)\n", explain_out.c_str(),
                records);
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    recording.recorder().write_chrome_trace(out);
    std::printf("\nwrote %s (%zu trace events)\n", trace_out.c_str(),
                recording.recorder().event_count());
  }
  return 0;
}
