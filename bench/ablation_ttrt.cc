// Ablation — TTRT and the deadline floor.
//
// The timed-token protocol's worst case makes ~2·TTRT the floor of each
// MAC's delay bound, so a backbone-crossing path floors at ≈ 4·TTRT plus
// constants. Sweeping TTRT at a fixed workload shows the knee the ring
// configuration imposes on admission: small TTRT buys deadline headroom
// but shrinks the per-rotation synchronous budget (TTRT − Δ), choking
// capacity; large TTRT wastes the deadline on token latency. The classic
// FDDI parameter-selection trade-off, evaluated through the whole CAC.
//
// Flags (key=value): u requests warmup seed seeds rho_mbps c2_kbits p1_ms
// p2_ms deadline_ms lifetime_s iters eqtol
#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams base = bench::workload_from_flags(flags);
  const double u = flags.get("u", 0.3);
  const int seeds = static_cast<int>(flags.get("seeds", 3));
  core::CacConfig probe = bench::cac_from_flags(flags, 0.5);
  flags.check_unknown();

  std::printf("# Ablation: TTRT sweep (U = %.2f, D = %.0f ms)\n", u,
              val(base.deadline) * 1e3);
  TableWriter table({"TTRT (ms)", "sync budget (ms)", "AP",
                     "mean admitted bound (ms)"});
  for (double ttrt_ms : {2.0, 4.0, 8.0, 12.0, 16.0, 24.0}) {
    net::TopologyParams params = net::paper_topology_params();
    params.ring.ttrt = units::ms(ttrt_ms);
    // Δ is dominated by ring latency and token overhead, not TTRT; keep the
    // default 1 ms.
    const net::AbhnTopology topo(params);

    ProportionStats ap;
    RunningStats bound;
    for (int s = 0; s < seeds; ++s) {
      sim::WorkloadParams w = base;
      w.seed = base.seed + static_cast<std::uint64_t>(1000 * s);
      w.lambda = sim::lambda_for_utilization(u, w, topo);
      core::CacConfig cfg = probe;
      const auto r = sim::run_admission_simulation(topo, cfg, w);
      ap.merge(r.admission);
      if (r.admitted > 0) bound.add(r.admitted_delay.mean());
    }
    table.add_row({TableWriter::fmt(ttrt_ms, 0),
                   TableWriter::fmt(ttrt_ms - 1.0, 0),
                   TableWriter::fmt(ap.proportion(), 3),
                   bound.count() > 0 ? TableWriter::fmt(bound.mean() * 1e3, 1)
                                     : "-"});
    std::fprintf(stderr, "TTRT=%.0fms done\n", ttrt_ms);
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("\n(the path's delay floor is ≈ 4·TTRT + constants; the ring "
              "budget is TTRT − Δ per rotation)\n");
  return 0;
}
