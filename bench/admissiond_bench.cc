// admissiond_bench: the admission service's SLO scenario, built to isolate
// the cache-eviction latency cliff from intrinsic workload variance.
//
// The windowed cliff metric in SloReport only means something when steady
// requests are cost-homogeneous, so unlike the open-loop soak this bench
// pins the ledger and controls exactly which requests insert cache entries:
//
//   1. SATURATE: admit long-lived heavy connections until the first
//      infeasible reject. No releases until the end — the ledger (and with
//      it every Tier-B decision digest) stays frozen through measurement.
//   2. MEASURE: cycle a HOT SET of reject-class specs. Each pays one exact
//      joint analysis on first sight, is memoized in the session decision
//      table, and every repeat is a digest hit (microseconds). Every
//      pressure_every-th setup is a PRESSURE spec: a never-seen source with
//      a deadline so tight the Tier-A floor certificate rejects it from its
//      send prefix alone — no exact analysis, no ledger change, but fresh
//      flat/prefix/screen entries that fill the session generations and
//      (at a small session_cap) force rotations.
//
// Eviction must not cost the hot set its warmth: the hot digests are
// promoted on every cycle, so generational rotation sheds only the
// pressure one-shots and post-eviction latency stays at steady state. The
// old wholesale-clear trim dropped the hot set too, replaying every exact
// analysis after every trim — exactly the p99 cliff the report's
// eviction_cliff_ratio (post-eviction p99 / steady p50, acceptance <= 3)
// makes visible.
//
// The full request sequence is then replayed on a serial service (batch 1,
// no prewarm, 1 analysis thread); decisions_match reports digest equality.
// tools/bench_compare.py gates decisions_match, the cliff ratio, and a
// conservative absolute throughput floor.
//
// Flags (key=value): setups hot_set pressure_every session_cap window
//                    batch threads seed overhead_reps json
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/cac.h"
#include "src/net/topology.h"
#include "src/obs/flight.h"
#include "src/server/admissiond.h"
#include "src/traffic/sources.h"
#include "src/util/flags.h"
#include "src/util/thread_pool.h"

namespace {

using namespace hetnet;  // NOLINT: bench binary

server::Request make_setup(std::uint64_t seq, net::ConnectionId id,
                           net::HostId src, net::HostId dst,
                           EnvelopePtr source, Seconds deadline) {
  server::Request req;
  req.seq = seq;
  req.type = server::RequestType::kSetup;
  req.id = id;
  req.spec.id = id;
  req.spec.src = src;
  req.spec.dst = dst;
  req.spec.source = std::move(source);
  req.spec.deadline = deadline;
  return req;
}

void run_segment(server::AdmissionService& service,
                 const std::vector<server::Request>& requests,
                 std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    service.submit(requests[i]);
    if (service.pending() >= 128) service.run_round();
  }
  service.run_all();
}

void write_json(std::ostream& out, const server::SloReport& r, int threads,
                std::uint64_t hot_evals, bool decisions_match,
                double telemetry_overhead, bool telemetry_decisions_match) {
  out << "{\n  \"bench\": \"admissiond_bench\",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"requests\": " << r.requests << ",\n"
      << "  \"setups\": " << r.setups << ",\n"
      << "  \"admitted\": " << r.admitted << ",\n"
      << "  \"sustained_throughput\": " << r.sustained_throughput << ",\n"
      << "  \"setup_p50_ns\": " << r.setup_p50_ns << ",\n"
      << "  \"setup_p99_ns\": " << r.setup_p99_ns << ",\n"
      << "  \"steady_p50_ns\": " << r.steady_p50_ns << ",\n"
      << "  \"steady_p99_ns\": " << r.steady_p99_ns << ",\n"
      << "  \"steady_mean_ns\": " << r.steady_mean_ns << ",\n"
      << "  \"post_eviction_p50_ns\": " << r.post_eviction_p50_ns << ",\n"
      << "  \"post_eviction_p99_ns\": " << r.post_eviction_p99_ns << ",\n"
      << "  \"post_eviction_samples\": " << r.post_eviction_samples << ",\n"
      << "  \"evictions\": " << r.evictions << ",\n"
      << "  \"invalidations\": " << r.invalidations << ",\n"
      << "  \"hot_exact_evals\": " << hot_evals << ",\n"
      << "  \"eviction_cliff_ratio\": " << r.eviction_cliff_ratio() << ",\n"
      << "  \"telemetry_overhead\": " << telemetry_overhead << ",\n"
      << "  \"telemetry_decisions_match\": "
      << (telemetry_decisions_match ? "true" : "false") << ",\n"
      << "  \"decisions_match\": " << (decisions_match ? "true" : "false")
      << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::uint64_t setups =
      static_cast<std::uint64_t>(flags.get("setups", 20000));
  const int hot_set = static_cast<int>(flags.get("hot_set", 8));
  // Defaults are tuned so the run actually demonstrates eviction: the
  // pressure cadence against this session_cap forces regular generation
  // rotations (evictions > 0 in the report) while the hot set stays warm.
  const std::uint64_t pressure_every =
      static_cast<std::uint64_t>(flags.get("pressure_every", 100));
  const std::size_t session_cap =
      static_cast<std::size_t>(flags.get("session_cap", 256));
  const std::uint64_t window = static_cast<std::uint64_t>(flags.get(
      "window", 32));
  const std::size_t batch = static_cast<std::size_t>(flags.get("batch", 32));
  const int threads = static_cast<int>(
      flags.get("threads", double(util::hardware_threads())));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  const std::uint64_t overhead_reps =
      static_cast<std::uint64_t>(flags.get("overhead_reps", 15));
  const std::string json_path = flags.get_string("json", "");
  flags.check_unknown();

  const net::AbhnTopology topology(net::paper_topology_params());
  const int rings = topology.num_rings();
  const int hosts = topology.params().hosts_per_ring;

  // ---- Request sequence (deterministic; seed only shifts host picks) ----
  std::vector<server::Request> requests;
  std::uint64_t seq = 0;
  net::ConnectionId next_id = 1;
  Rng rng(seed);

  // Saturation fill: heavy long-lived connections, round-robin across
  // rings. Enough offered load to pin every ring's ledger; the service
  // rejects the overflow, which is fine — the fill stops inserting new
  // state once the rings are full, and everything after sees a frozen
  // ledger.
  const auto heavy = std::make_shared<DualPeriodicEnvelope>(
      units::kbits(800), units::ms(100), units::kbits(80), units::ms(10),
      BitsPerSecond::infinity());
  const int fill = 4 * rings * hosts;
  std::vector<net::ConnectionId> fill_ids;
  for (int i = 0; i < fill; ++i) {
    const net::HostId src{i % rings, (i / rings) % hosts};
    const net::HostId dst{(src.ring + 1) % rings,
                          int(rng.uniform_index(std::uint64_t(hosts)))};
    fill_ids.push_back(next_id);
    requests.push_back(make_setup(seq++, next_id++, src, dst, heavy,
                                  units::ms(60)));
  }

  // Hot set: distinct reject-class specs (demand far beyond the leftover
  // capacity, deadline loose enough that the floor certificate cannot
  // refute from the prefix alone — the reject needs the exact joint
  // analysis once, then lives in the decision memo).
  std::vector<server::Request> hot;
  for (int h = 0; h < hot_set; ++h) {
    const auto source = std::make_shared<DualPeriodicEnvelope>(
        units::kbits(1200.0 + 40.0 * h), units::ms(100), units::kbits(120),
        units::ms(10), BitsPerSecond::infinity());
    const net::HostId src{h % rings, h % hosts};
    const net::HostId dst{(h + 1) % rings, (h / rings) % hosts};
    hot.push_back(make_setup(0, 0, src, dst, source, units::ms(55)));
  }

  // Warm-up cycle: each hot spec's one intrinsic exact analysis (and the
  // insert burst it causes) happens BEFORE measurement starts, so the
  // measured phase is cost-homogeneous digest hits from its first sample.
  for (int h = 0; h < hot_set; ++h) {
    server::Request req = hot[std::size_t(h)];
    req.seq = seq++;
    req.id = next_id;
    req.spec.id = next_id++;
    requests.push_back(req);
  }
  const std::size_t fill_end = requests.size();

  std::uint64_t pressure = 0;
  for (std::uint64_t i = 0; i < setups; ++i) {
    if (pressure_every > 0 && i % pressure_every == pressure_every - 1) {
      // Pressure: a never-repeated source with a deadline no allocation
      // can meet — floor-rejected from its own send prefix, but its flat
      // twin, screen state, and compiled prefixes are fresh inserts.
      const auto source = std::make_shared<DualPeriodicEnvelope>(
          units::kbits(3000.0 + 0.125 * double(pressure)), units::ms(50),
          units::kbits(300), units::ms(5), BitsPerSecond::infinity());
      ++pressure;
      const net::HostId src{int(pressure) % rings, int(pressure) % hosts};
      const net::HostId dst{(src.ring + 1) % rings, 0};
      requests.push_back(make_setup(seq++, next_id++, src, dst, source,
                                    units::us(200)));
    } else {
      server::Request req = hot[i % std::uint64_t(hot_set)];
      req.seq = seq++;
      req.id = next_id;
      req.spec.id = next_id++;
      requests.push_back(req);
    }
  }

  const std::size_t measure_end = requests.size();

  // Teardown: exercises matched releases and release-keyed invalidation
  // (after the report is taken, so it never skews the measured phase).
  for (const net::ConnectionId id : fill_ids) {
    server::Request req;
    req.seq = seq++;
    req.type = server::RequestType::kRelease;
    req.id = id;
    requests.push_back(req);
  }

  // ---- Measured service (telemetry off: isolates the admission path) ----
  server::AdmissiondConfig config;
  config.batch_size = batch;
  config.prewarm = true;
  config.post_eviction_window = window;
  config.cac.session_max_entries = session_cap;
  config.cac.analysis.threads = threads;
  config.flight_capacity = 0;
  server::AdmissionService service(&topology, config);
  run_segment(service, requests, 0, fill_end);
  const auto counters_at_mark = service.cac().metrics().counter_snapshot();
  service.begin_measurement();
  run_segment(service, requests, fill_end, measure_end);
  const server::SloReport report = service.report();
  const auto counters = service.cac().metrics().counter_snapshot();
  run_segment(service, requests, measure_end, requests.size());
  const auto hot_evals = counters.find("cac.session.decision_evals");
  const auto mark_evals = counters_at_mark.find("cac.session.decision_evals");

  // ---- Telemetry-on passes: the overhead + neutrality gate ----
  // Same sequence with the full telemetry plane live: flight recorder at
  // default capacity, SLO monitor evaluating every epoch (thresholds set
  // low enough that epochs actually breach, so the breach bookkeeping is
  // part of what is measured). bench_compare.py requires the decision
  // digest to be unchanged by observation and gates the steady-latency
  // ratio. Two noise defenses: the ratio uses the steady-phase MEAN (the
  // geometric bins quantize p50 in ~9% steps, coarser than the 5% gate;
  // the mean comes from the exact sum/count), and it is taken over the
  // MINIMUM mean across `overhead_reps` off/on pairs — minima shed
  // scheduler noise the way the microbench's min-of-reps timings do.
  server::AdmissiondConfig telem = config;
  telem.flight_capacity = obs::FlightRecorder::kDefaultCapacityPerShard;
  telem.slo.p50_ns = 1000;  // ~1 us: digest hits run hotter than this,
  telem.slo.p99_ns = 2000;  // so the breach path stays exercised
  telem.slo.min_admission_probability = 0.0;
  server::AdmissionService telem_service(&topology, telem);
  run_segment(telem_service, requests, 0, fill_end);
  telem_service.begin_measurement();
  run_segment(telem_service, requests, fill_end, measure_end);
  const server::SloReport telem_report = telem_service.report();
  run_segment(telem_service, requests, measure_end, requests.size());
  const bool telemetry_decisions_match =
      telem_service.decision_digest() == service.decision_digest();
  std::int64_t min_off = report.steady_mean_ns;
  std::int64_t min_on = telem_report.steady_mean_ns;
  for (std::uint64_t rep = 1; rep < overhead_reps; ++rep) {
    server::AdmissionService off_rep(&topology, config);
    run_segment(off_rep, requests, 0, fill_end);
    off_rep.begin_measurement();
    run_segment(off_rep, requests, fill_end, measure_end);
    min_off = std::min(min_off, off_rep.report().steady_mean_ns);
    server::AdmissionService on_rep(&topology, telem);
    run_segment(on_rep, requests, 0, fill_end);
    on_rep.begin_measurement();
    run_segment(on_rep, requests, fill_end, measure_end);
    min_on = std::min(min_on, on_rep.report().steady_mean_ns);
  }
  const double telemetry_overhead =
      min_off > 0 ? double(min_on) / double(min_off) : 1.0;

  // ---- Serial replay: the determinism gate ----
  server::AdmissiondConfig serial = config;
  serial.batch_size = 1;
  serial.prewarm = false;
  serial.cac.analysis.threads = 1;
  server::AdmissionService reference(&topology, serial);
  run_segment(reference, requests, 0, requests.size());
  const bool decisions_match =
      reference.decision_digest() == service.decision_digest();

  // Exact joint analyses run during the MEASURED phase — the hot set is
  // warmed before the mark, so anything here means memoized decisions were
  // lost to eviction.
  const std::uint64_t evals =
      (hot_evals != counters.end() ? hot_evals->second : 0) -
      (mark_evals != counters_at_mark.end() ? mark_evals->second : 0);
  if (json_path.empty()) {
    write_json(std::cout, report, threads, evals, decisions_match,
               telemetry_overhead, telemetry_decisions_match);
  } else {
    std::ofstream out(json_path);
    write_json(out, report, threads, evals, decisions_match,
               telemetry_overhead, telemetry_decisions_match);
    std::cout << "admissiond_bench: wrote " << json_path << "\n";
  }
  std::cout << "admissiond_bench: steady p50 " << report.steady_p50_ns
            << " ns, post-eviction p99 " << report.post_eviction_p99_ns
            << " ns, cliff " << report.eviction_cliff_ratio()
            << ", evictions " << report.evictions << ", telemetry overhead "
            << telemetry_overhead << "x, decisions "
            << (decisions_match ? "match" : "DIVERGE") << " (telemetry "
            << (telemetry_decisions_match ? "neutral" : "NOT NEUTRAL")
            << ")\n";
  return decisions_match && telemetry_decisions_match ? 0 : 1;
}
