// Ablation — allocation policies (Section 5.3's design argument).
//
// The paper argues that both strawman policies are inferior to the
// β-interpolation: allocating the minimum needed leaves existing
// connections so tight that future arrivals break them, and allocating the
// maximum available starves future connections of synchronous bandwidth.
// This bench runs the Section-6 workload under each policy at several
// loads and prints AP side by side, together with the granted-allocation
// averages that expose the mechanism.
//
// Flags (key=value): requests warmup seed seeds rho_mbps c2_kbits p1_ms
// p2_ms deadline_ms lifetime_s iters eqtol
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace hetnet;
  bench::Flags flags(argc, argv);
  sim::WorkloadParams base = bench::workload_from_flags(flags);
  const int seeds = static_cast<int>(flags.get("seeds", 3));
  core::CacConfig probe = bench::cac_from_flags(flags, 0.5);
  flags.check_unknown();

  const net::AbhnTopology topo(net::paper_topology_params());

  struct Policy {
    const char* name;
    core::AllocationRule rule;
    double beta;
  };
  const std::vector<Policy> policies = {
      {"min-need", core::AllocationRule::kMinimumNeeded, 0.0},
      {"beta=0.5", core::AllocationRule::kBetaInterpolation, 0.5},
      {"max-need", core::AllocationRule::kBetaInterpolation, 1.0},
      {"max-avail", core::AllocationRule::kMaximumAvailable, 0.5},
  };

  std::printf("# Ablation: allocation policies (AP | mean granted H_S ms)\n");
  TableWriter table({"U", "min-need", "beta=0.5", "max-need", "max-avail"});
  for (double u : {0.1, 0.3, 0.6, 0.9}) {
    std::vector<std::string> row{TableWriter::fmt(u, 1)};
    for (const Policy& policy : policies) {
      ProportionStats ap;
      RunningStats h_s;
      for (int s = 0; s < seeds; ++s) {
        sim::WorkloadParams w = base;
        w.seed = base.seed + static_cast<std::uint64_t>(1000 * s);
        w.lambda = sim::lambda_for_utilization(u, w, topo);
        core::CacConfig cfg = probe;
        cfg.rule = policy.rule;
        cfg.beta = policy.beta;
        const auto result = sim::run_admission_simulation(topo, cfg, w);
        ap.merge(result.admission);
        h_s.add(result.granted_h_s.mean());
      }
      row.push_back(TableWriter::fmt(ap.proportion(), 3) + " | " +
                    TableWriter::fmt(h_s.mean() * 1e3, 2));
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "U=%.1f done\n", u);
  }
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
